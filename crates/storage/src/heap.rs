//! Heap files: a sequence of slotted pages on disk, plus an overflow file
//! for tuples larger than a page.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use nodb_common::Result;

use crate::page::{Page, PAGE_SIZE};

/// Tag prefix for inline tuples.
pub const TAG_INLINE: u8 = 0;
/// Tag prefix for overflowed tuples (reference into the overflow file).
pub const TAG_OVERFLOW: u8 = 1;

/// A heap file under construction or being read.
///
/// Holds no open file handle: reads open on demand (the buffer pool
/// bounds how often that happens), so handles are cheap to clone across
/// scans.
#[derive(Debug, Clone)]
pub struct HeapFile {
    path: PathBuf,
    overflow_path: PathBuf,
    n_pages: u32,
    n_rows: u64,
    overflow_rows: u64,
}

impl HeapFile {
    /// Create a new heap (truncates existing files).
    pub fn create(path: &Path) -> Result<HeapFile> {
        let overflow_path = path.with_extension("ovf");
        File::create(path)?;
        File::create(&overflow_path)?;
        Ok(HeapFile {
            path: path.to_path_buf(),
            overflow_path,
            n_pages: 0,
            n_rows: 0,
            overflow_rows: 0,
        })
    }

    /// Pages written.
    pub fn n_pages(&self) -> u32 {
        self.n_pages
    }

    /// Rows written.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Rows that went through the overflow path.
    pub fn overflow_rows(&self) -> u64 {
        self.overflow_rows
    }

    /// Total bytes on disk (heap + overflow).
    pub fn bytes_on_disk(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len() + std::fs::metadata(&self.overflow_path)?.len())
    }

    /// The heap file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read one page's raw bytes (opens the file; scans should prefer
    /// [`HeapFile::open_reader`] + [`read_page_with`] to reuse a handle).
    pub fn read_page(&self, page_no: u32) -> Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        read_page_with(&mut f, page_no)
    }

    /// Open a reusable read handle for [`read_page_with`].
    pub fn open_reader(&self) -> Result<File> {
        Ok(File::open(&self.path)?)
    }

    /// Read an overflowed tuple (a seek + read per tuple — the expensive
    /// path wide rows force onto loaded engines).
    pub fn read_overflow(&self, offset: u64, len: u32) -> Result<Vec<u8>> {
        let mut f = File::open(&self.overflow_path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }
}

/// Read one page through an existing handle (no open per page).
pub fn read_page_with(f: &mut File, page_no: u32) -> Result<Vec<u8>> {
    f.seek(SeekFrom::Start(page_no as u64 * PAGE_SIZE as u64))?;
    let mut buf = vec![0u8; PAGE_SIZE];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

/// Streaming heap writer used by the bulk loader.
pub struct HeapWriter {
    heap: HeapFile,
    file: File,
    overflow: File,
    overflow_len: u64,
    current: Page,
    scratch: Vec<u8>,
}

impl HeapWriter {
    /// Start writing a fresh heap at `path`.
    pub fn create(path: &Path) -> Result<HeapWriter> {
        let heap = HeapFile::create(path)?;
        let file = std::fs::OpenOptions::new().write(true).open(&heap.path)?;
        let overflow = std::fs::OpenOptions::new()
            .write(true)
            .open(&heap.overflow_path)?;
        Ok(HeapWriter {
            heap,
            file,
            overflow,
            overflow_len: 0,
            current: Page::new(),
            scratch: Vec::new(),
        })
    }

    /// Append one encoded tuple. Tuples that cannot fit in a page go to
    /// the overflow file, leaving a 13-byte reference in the page.
    pub fn append(&mut self, tuple: &[u8]) -> Result<()> {
        self.scratch.clear();
        if tuple.len() + 1 > Page::max_tuple_len() {
            // Overflow: [tag][offset u64][len u32]
            self.overflow.write_all(tuple)?;
            self.scratch.push(TAG_OVERFLOW);
            self.scratch
                .extend_from_slice(&self.overflow_len.to_le_bytes());
            self.scratch
                .extend_from_slice(&(tuple.len() as u32).to_le_bytes());
            self.overflow_len += tuple.len() as u64;
            self.heap.overflow_rows += 1;
        } else {
            self.scratch.push(TAG_INLINE);
            self.scratch.extend_from_slice(tuple);
        }
        if self.current.insert(&self.scratch).is_none() {
            self.flush_page()?;
            self.current
                .insert(&self.scratch)
                .expect("tuple fits in an empty page");
        }
        self.heap.n_rows += 1;
        Ok(())
    }

    fn flush_page(&mut self) -> Result<()> {
        let page = std::mem::take(&mut self.current);
        self.file.write_all(page.bytes())?;
        self.heap.n_pages += 1;
        self.current = Page::new();
        Ok(())
    }

    /// Finish writing; returns the readable heap.
    pub fn finish(mut self) -> Result<HeapFile> {
        if self.current.n_slots() > 0 {
            self.flush_page()?;
        }
        self.file.flush()?;
        self.overflow.flush()?;
        Ok(self.heap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    #[test]
    fn write_then_read_pages() {
        let td = TempDir::new("nodb-heap").unwrap();
        let p = td.file("t.heap");
        let mut w = HeapWriter::create(&p).unwrap();
        for i in 0..1000u32 {
            w.append(format!("tuple-{i}").as_bytes()).unwrap();
        }
        let heap = w.finish().unwrap();
        assert_eq!(heap.n_rows(), 1000);
        assert!(heap.n_pages() >= 1);
        // First tuple of first page.
        let page = Page::from_bytes(heap.read_page(0).unwrap());
        assert_eq!(&page.tuple(0)[1..], b"tuple-0");
        assert_eq!(page.tuple(0)[0], TAG_INLINE);
    }

    #[test]
    fn oversized_tuples_overflow() {
        let td = TempDir::new("nodb-heap").unwrap();
        let p = td.file("t.heap");
        let mut w = HeapWriter::create(&p).unwrap();
        let big = vec![0xabu8; PAGE_SIZE * 2];
        w.append(&big).unwrap();
        w.append(b"small").unwrap();
        let heap = w.finish().unwrap();
        assert_eq!(heap.overflow_rows(), 1);
        let page = Page::from_bytes(heap.read_page(0).unwrap());
        let t0 = page.tuple(0);
        assert_eq!(t0[0], TAG_OVERFLOW);
        let offset = u64::from_le_bytes(t0[1..9].try_into().unwrap());
        let len = u32::from_le_bytes(t0[9..13].try_into().unwrap());
        let back = heap.read_overflow(offset, len).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn page_spill_preserves_order() {
        let td = TempDir::new("nodb-heap").unwrap();
        let p = td.file("t.heap");
        let mut w = HeapWriter::create(&p).unwrap();
        // ~3KB tuples: 2 per page.
        for i in 0..5u32 {
            let t = vec![i as u8; 3000];
            w.append(&t).unwrap();
        }
        let heap = w.finish().unwrap();
        assert_eq!(heap.n_pages(), 3);
        let mut seen = Vec::new();
        for pg in 0..heap.n_pages() {
            let page = Page::from_bytes(heap.read_page(pg).unwrap());
            for s in 0..page.n_slots() {
                seen.push(page.tuple(s)[1]);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
