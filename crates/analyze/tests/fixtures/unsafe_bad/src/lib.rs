//! Seeded violations for the `unsafe` arm: a site with no adjacent
//! justification comment and no entry in the (absent) audit file —
//! two findings.

pub fn first_byte(buf: &[u8]) -> u8 {
    unsafe { *buf.get_unchecked(0) }
}
