//! Field tokenization primitives.
//!
//! All functions operate on a single line (no terminating newline) and work
//! with *start offsets*: the byte index where a field's value begins. This
//! matches the paper's positional map, which stores positions of attribute
//! starts and reconstructs a value as "the characters that appear between
//! two positions" (§4.2).
//!
//! Delimiter searches go through the word-at-a-time scanners in
//! [`nodb_common::swar`] rather than byte-at-a-time loops; proptests below
//! pin them to scalar reference behavior.

use nodb_common::swar;

/// Tokenize the start offsets of fields `0..=upto`, appending them to
/// `out`. Scanning stops as soon as the start of field `upto` is known —
/// the paper's *selective tokenizing* (§4.1): a query needing attributes 4
/// and 8 tokenizes each tuple only up to attribute 8.
///
/// Returns the number of field starts appended (may be fewer than
/// `upto + 1` if the line has fewer fields).
pub fn tokenize_upto(line: &[u8], delim: u8, upto: usize, out: &mut Vec<u32>) -> usize {
    let before = out.len();
    out.push(0);
    if upto == 0 {
        return 1;
    }
    let mut found = 1;
    for i in swar::ByteFinder::new(line, delim) {
        out.push(i as u32 + 1);
        found += 1;
        if found > upto {
            break;
        }
    }
    out.len() - before
}

/// Tokenize start offsets of *all* fields on the line.
pub fn tokenize_all(line: &[u8], delim: u8, out: &mut Vec<u32>) -> usize {
    tokenize_upto(line, delim, usize::MAX - 1, out)
}

/// Resume a previous [`tokenize_upto`] of the same line: `out` holds the
/// starts of fields `0..out.len()` and scanning continues from the last
/// known start until the start of field `upto` is found (or the line
/// ends). Returns the total number of starts now in `out`. This is how
/// a pushed-down predicate grows tokenization only for rows it keeps —
/// the already-scanned prefix is never re-scanned.
pub fn tokenize_resume(line: &[u8], delim: u8, upto: usize, out: &mut Vec<u32>) -> usize {
    let Some(&last) = out.last() else {
        return tokenize_upto(line, delim, upto, out);
    };
    let mut found = out.len();
    if found > upto {
        return found;
    }
    let base = last as usize;
    for i in swar::ByteFinder::new(&line[base.min(line.len())..], delim) {
        out.push((base + i) as u32 + 1);
        found += 1;
        if found > upto {
            break;
        }
    }
    found
}

/// Number of fields on the line (1 + number of delimiters).
pub fn count_fields(line: &[u8], delim: u8) -> usize {
    1 + swar::count_byte(line, delim)
}

/// End offset (exclusive) of the field starting at `start`: scans forward
/// to the next delimiter or end of line.
pub fn field_end(line: &[u8], delim: u8, start: u32) -> u32 {
    let s = start as usize;
    match swar::find_byte(&line[s.min(line.len())..], delim) {
        Some(off) => (s + off) as u32,
        None => line.len() as u32,
    }
}

/// The bytes of the field starting at `start`.
pub fn field_at(line: &[u8], delim: u8, start: u32) -> &[u8] {
    let end = field_end(line, delim, start);
    &line[start as usize..end as usize]
}

/// Incremental *forward* parsing (§4.2): given the known start of field
/// `from_idx`, return the start of field `to_idx > from_idx` by scanning
/// only the bytes in between. Returns `None` if the line ends first.
pub fn advance_forward(
    line: &[u8],
    delim: u8,
    from_start: u32,
    from_idx: usize,
    to_idx: usize,
) -> Option<u32> {
    debug_assert!(to_idx >= from_idx);
    let remaining = to_idx - from_idx;
    if remaining == 0 {
        return Some(from_start);
    }
    let from = (from_start as usize).min(line.len());
    swar::ByteFinder::new(&line[from..], delim)
        .nth(remaining - 1)
        .map(|i| (from + i) as u32 + 1)
}

/// Incremental *backward* parsing (§4.2: "jumps initially to the position
/// of the 12th attribute and tokenizes backwards"): given the known start
/// of field `from_idx`, return the start of field `to_idx < from_idx`.
pub fn advance_backward(
    line: &[u8],
    delim: u8,
    from_start: u32,
    from_idx: usize,
    to_idx: usize,
) -> Option<u32> {
    debug_assert!(to_idx <= from_idx);
    let remaining = from_idx - to_idx;
    if remaining == 0 {
        return Some(from_start);
    }
    // from_start points just past a delimiter (or 0). Walk left over
    // `remaining` additional delimiters; the target field starts right
    // after the (remaining+1)-th delimiter counted from here.
    let mut seen = 0usize;
    let mut end = from_start as usize;
    while let Some(i) = swar::rfind_byte(&line[..end], delim) {
        seen += 1;
        if seen == remaining + 1 {
            return Some(i as u32 + 1);
        }
        end = i;
    }
    if seen == remaining {
        Some(0)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const LINE: &[u8] = b"aa,b,,dddd,e";

    #[test]
    fn tokenize_all_finds_every_start() {
        let mut out = Vec::new();
        let n = tokenize_all(LINE, b',', &mut out);
        assert_eq!(n, 5);
        assert_eq!(out, vec![0, 3, 5, 6, 11]);
    }

    #[test]
    fn tokenize_upto_stops_early() {
        let mut out = Vec::new();
        let n = tokenize_upto(LINE, b',', 2, &mut out);
        assert_eq!(n, 3);
        assert_eq!(out, vec![0, 3, 5]);
    }

    #[test]
    fn tokenize_upto_handles_short_lines() {
        let mut out = Vec::new();
        let n = tokenize_upto(b"x,y", b',', 5, &mut out);
        assert_eq!(n, 2);
    }

    #[test]
    fn resume_continues_where_selective_stopped() {
        let mut out = Vec::new();
        tokenize_upto(LINE, b',', 1, &mut out);
        assert_eq!(out, vec![0, 3]);
        assert_eq!(tokenize_resume(LINE, b',', 4, &mut out), 5);
        let mut full = Vec::new();
        tokenize_all(LINE, b',', &mut full);
        assert_eq!(out, full);
        // Already past the target: a no-op.
        assert_eq!(tokenize_resume(LINE, b',', 2, &mut out), 5);
        assert_eq!(out, full);
    }

    #[test]
    fn field_extraction() {
        assert_eq!(field_at(LINE, b',', 0), b"aa");
        assert_eq!(field_at(LINE, b',', 3), b"b");
        assert_eq!(field_at(LINE, b',', 5), b"");
        assert_eq!(field_at(LINE, b',', 6), b"dddd");
        assert_eq!(field_at(LINE, b',', 11), b"e");
    }

    #[test]
    fn empty_line_is_one_empty_field() {
        let mut out = Vec::new();
        assert_eq!(tokenize_all(b"", b',', &mut out), 1);
        assert_eq!(field_at(b"", b',', 0), b"");
        assert_eq!(count_fields(b"", b','), 1);
    }

    #[test]
    fn forward_navigation_from_anchor() {
        // Know field 1 starts at 3; find field 3.
        assert_eq!(advance_forward(LINE, b',', 3, 1, 3), Some(6));
        assert_eq!(advance_forward(LINE, b',', 3, 1, 1), Some(3));
        assert_eq!(advance_forward(LINE, b',', 3, 1, 9), None);
    }

    #[test]
    fn backward_navigation_from_anchor() {
        // Know field 3 starts at 6; find field 1.
        assert_eq!(advance_backward(LINE, b',', 6, 3, 1), Some(3));
        // ... and field 0.
        assert_eq!(advance_backward(LINE, b',', 6, 3, 0), Some(0));
        assert_eq!(advance_backward(LINE, b',', 6, 3, 3), Some(6));
    }

    proptest! {
        /// Forward/backward navigation from any anchor must agree with a
        /// full tokenization.
        #[test]
        fn navigation_agrees_with_full_tokenize(
            fields in proptest::collection::vec("[a-z]{0,6}", 1..12),
            from in 0usize..12,
            to in 0usize..12,
        ) {
            let line = fields.join(",").into_bytes();
            let mut starts = Vec::new();
            tokenize_all(&line, b',', &mut starts);
            let n = starts.len();
            prop_assume!(from < n && to < n);
            let anchor = starts[from];
            let got = if to >= from {
                advance_forward(&line, b',', anchor, from, to)
            } else {
                advance_backward(&line, b',', anchor, from, to)
            };
            prop_assert_eq!(got, Some(starts[to]));
        }

        /// Selective tokenization is a prefix of full tokenization.
        #[test]
        fn selective_is_prefix_of_full(
            fields in proptest::collection::vec("[a-z]{0,4}", 1..10),
            upto in 0usize..10,
        ) {
            let line = fields.join(",").into_bytes();
            let mut full = Vec::new();
            tokenize_all(&line, b',', &mut full);
            let mut sel = Vec::new();
            tokenize_upto(&line, b',', upto, &mut sel);
            let expect = full.len().min(upto + 1);
            prop_assert_eq!(&sel[..], &full[..expect]);
        }

        /// Resuming tokenization from any stopping point agrees with
        /// tokenizing from scratch.
        #[test]
        fn resume_matches_from_scratch(
            fields in proptest::collection::vec("[a-z]{0,4}", 1..10),
            stop in 0usize..10,
            upto in 0usize..10,
        ) {
            prop_assume!(stop <= upto);
            let line = fields.join(",").into_bytes();
            let mut resumed = Vec::new();
            tokenize_upto(&line, b',', stop, &mut resumed);
            let n = tokenize_resume(&line, b',', upto, &mut resumed);
            let mut scratch = Vec::new();
            let m = tokenize_upto(&line, b',', upto, &mut scratch);
            prop_assert_eq!(n, m);
            prop_assert_eq!(resumed, scratch);
        }

        /// Extracted fields match a straightforward split.
        #[test]
        fn fields_match_split(fields in proptest::collection::vec("[a-z]{0,5}", 1..10)) {
            let line = fields.join(",").into_bytes();
            let mut starts = Vec::new();
            tokenize_all(&line, b',', &mut starts);
            prop_assert_eq!(starts.len(), fields.len());
            for (i, f) in fields.iter().enumerate() {
                prop_assert_eq!(field_at(&line, b',', starts[i]), f.as_bytes());
            }
        }
    }

    /// The SWAR tokenizers against byte-at-a-time reference
    /// implementations (the pre-SWAR code), over arbitrary bytes: all
    /// 256 values appear, so CRLF pairs, quotes, unicode continuation
    /// bytes and high-bit lanes are exercised, and lengths straddle the
    /// 8-byte word boundary (empty and short tails included).
    mod swar_vs_scalar {
        use super::*;

        fn ref_tokenize_upto(line: &[u8], delim: u8, upto: usize, out: &mut Vec<u32>) -> usize {
            let before = out.len();
            out.push(0);
            if upto == 0 {
                return 1;
            }
            let mut found = 1;
            for (i, &b) in line.iter().enumerate() {
                if b == delim {
                    out.push(i as u32 + 1);
                    found += 1;
                    if found > upto {
                        break;
                    }
                }
            }
            out.len() - before
        }

        fn ref_advance_forward(
            line: &[u8],
            delim: u8,
            from_start: u32,
            from_idx: usize,
            to_idx: usize,
        ) -> Option<u32> {
            let mut remaining = to_idx - from_idx;
            if remaining == 0 {
                return Some(from_start);
            }
            let mut i = from_start as usize;
            while i < line.len() {
                if line[i] == delim {
                    remaining -= 1;
                    if remaining == 0 {
                        return Some(i as u32 + 1);
                    }
                }
                i += 1;
            }
            None
        }

        fn ref_advance_backward(
            line: &[u8],
            delim: u8,
            from_start: u32,
            from_idx: usize,
            to_idx: usize,
        ) -> Option<u32> {
            let remaining = from_idx - to_idx;
            if remaining == 0 {
                return Some(from_start);
            }
            let mut seen = 0usize;
            let mut i = from_start as usize;
            while i > 0 {
                i -= 1;
                if line[i] == delim {
                    seen += 1;
                    if seen == remaining + 1 {
                        return Some(i as u32 + 1);
                    }
                }
            }
            if seen == remaining {
                Some(0)
            } else {
                None
            }
        }

        /// Arbitrary bytes with the delimiter mixed in often enough for
        /// multi-match words.
        fn raw_line() -> impl Strategy<Value = Vec<u8>> {
            proptest::collection::vec(
                prop_oneof![Just(b','), Just(b'\r'), Just(b'"'), any::<u8>()],
                0..80,
            )
        }

        proptest! {
            #[test]
            fn tokenize_matches_reference(line in raw_line(), upto in 0usize..12) {
                let mut got = Vec::new();
                let mut want = Vec::new();
                let n_got = tokenize_upto(&line, b',', upto, &mut got);
                let n_want = ref_tokenize_upto(&line, b',', upto, &mut want);
                prop_assert_eq!(n_got, n_want);
                prop_assert_eq!(got, want);
            }

            #[test]
            fn count_fields_matches_reference(line in raw_line()) {
                let want = 1 + line.iter().filter(|&&b| b == b',').count();
                prop_assert_eq!(count_fields(&line, b','), want);
            }

            #[test]
            fn field_end_matches_reference(line in raw_line(), start in 0usize..90) {
                prop_assume!(start <= line.len());
                let want = match line[start..].iter().position(|&b| b == b',') {
                    Some(off) => (start + off) as u32,
                    None => line.len() as u32,
                };
                prop_assert_eq!(field_end(&line, b',', start as u32), want);
            }
        }

        proptest! {
            #[test]
            fn navigation_matches_reference(
                line in raw_line(),
                from in 0usize..10,
                to in 0usize..10,
            ) {
                let mut starts = Vec::new();
                tokenize_all(&line, b',', &mut starts);
                let n = starts.len();
                prop_assume!(from < n && to < n);
                let anchor = starts[from];
                if to >= from {
                    prop_assert_eq!(
                        advance_forward(&line, b',', anchor, from, to),
                        ref_advance_forward(&line, b',', anchor, from, to)
                    );
                } else {
                    prop_assert_eq!(
                        advance_backward(&line, b',', anchor, from, to),
                        ref_advance_backward(&line, b',', anchor, from, to)
                    );
                }
            }
        }
    }
}
