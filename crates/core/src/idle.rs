//! Idle-time exploitation (paper §7, "Auto Tuning Tools").
//!
//! "Auto tuning tools for NoDB systems, given a budget of idle time and
//! workload knowledge, have the opportunity to exploit idle time as best
//! as possible, loading and indexing as much of the relevant data as
//! possible. The rest of the data remains unloaded and unindexed until
//! relevant queries arrive."
//!
//! [`crate::NoDb::exploit_idle_time`] does exactly that: it advances a
//! background scan over a table block by block, populating the end-of-line
//! index, positional map, cache and statistics, and stops the moment the
//! time budget runs out. Progress is incremental — whatever was built
//! stays valid for future queries, and a later call resumes where useful.

use std::time::{Duration, Instant};

/// What an idle-time session accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleReport {
    /// Tuples whose auxiliary information was (re)visited.
    pub rows_processed: u64,
    /// Positional pointers added.
    pub pointers_added: u64,
    /// Cache bytes added.
    pub cache_bytes_added: usize,
    /// Whether the whole file was covered before the budget ran out.
    pub completed: bool,
    /// Time actually spent.
    pub elapsed: Duration,
}

/// Which attributes idle work should favour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleFocus {
    /// Attributes the workload has already touched (from collected
    /// statistics); falls back to `AllAttributes` when no workload
    /// knowledge exists yet. This is the paper's "workload knowledge"
    /// input.
    WorkloadAttributes,
    /// Index and cache every attribute.
    AllAttributes,
}

pub(crate) fn run_idle(
    db: &crate::NoDb,
    table: &str,
    budget: Duration,
    focus: IdleFocus,
) -> nodb_common::Result<IdleReport> {
    let start = Instant::now();
    let before = db.aux_info(table)?;
    let entry = db.entry(table)?;
    let provider = match entry.provider.as_ref() {
        Some(crate::Provider::InSitu(p)) => p,
        _ => {
            return Err(nodb_common::NoDbError::catalog(format!(
                "idle-time exploitation needs an in-situ raw table, `{table}` is not one"
            )))
        }
    };
    // Pick the projection.
    let attrs: Vec<usize> = match focus {
        IdleFocus::AllAttributes => (0..entry.schema.len()).collect(),
        IdleFocus::WorkloadAttributes => {
            let analyzed = entry
                .runtime
                .as_ref()
                .map(|rt| rt.stats.lock().analyzed_attrs())
                .unwrap_or_default();
            if analyzed.is_empty() {
                (0..entry.schema.len()).collect()
            } else {
                analyzed.into_iter().map(|a| a as usize).collect()
            }
        }
    };
    let mut scan = provider.scan_for_idle(&attrs)?;
    let mut rows = 0u64;
    let mut completed = true;
    // The scan works block-at-a-time internally; checking the deadline on
    // every pulled row costs one `Instant::now` per tuple, which is
    // dwarfed by parsing. Structures built for finished blocks persist
    // even when we stop mid-file.
    while scan.next_row()?.is_some() {
        rows += 1;
        if start.elapsed() >= budget {
            completed = false;
            break;
        }
    }
    drop(scan);
    let after = db.aux_info(table)?;
    Ok(IdleReport {
        rows_processed: rows,
        pointers_added: after.posmap_pointers.saturating_sub(before.posmap_pointers),
        cache_bytes_added: after.cache_bytes.saturating_sub(before.cache_bytes),
        completed,
        elapsed: start.elapsed(),
    })
}
