//! Per-table workload log: decayed access-frequency counters per
//! attribute.
//!
//! NoDB's auxiliary structures pay off only when they hold what the
//! workload actually touches. The log records one *touch* per attribute
//! per scan (not per row — recording happens in scan preparation, so it
//! costs one short lock per query) and exposes a decayed *heat* per
//! attribute. The cache and the positional map consult the heat when a
//! byte budget forces an eviction: cold attributes go first, hot ones
//! stay resident, per "Workload-Driven Vertical Partitioning over Raw
//! Data" (Zhao/Cheng/Rusu).
//!
//! Decay is count-based, not wall-clock-based, on two horizons. A
//! global halving of every counter after each [`DECAY_EVERY`] recorded
//! touches bounds the counters. On top of that, the *reported* heat
//! ages with staleness: an attribute untouched for [`HALF_LIFE_SCANS`]
//! scans has its heat halved again per elapsed half-life, so a shifted
//! workload's fresh touches outrank an abandoned epoch's accumulated
//! count — without aging, columns hammered long ago would hold the
//! cache hostage and the adaptation the paper's Figure 6 shows could
//! never happen. Both horizons count scans/touches, never the clock,
//! which keeps the log deterministic for a given query sequence —
//! important because the differential test suites replay identical
//! workloads and expect identical eviction decisions.
//!
//! Without a budget the log is pure observation: recording touches
//! mutates nothing the scans read back, so unbudgeted runs stay
//! bit-identical whether or not a log is attached.

use std::sync::Mutex;

/// Touches between global halvings of every counter.
pub const DECAY_EVERY: u64 = 1024;

/// Scans without a touch after which an attribute's reported heat
/// halves (again per further elapsed half-life).
pub const HALF_LIFE_SCANS: u64 = 4;

/// Decayed per-attribute touch counters for one table.
#[derive(Debug, Default)]
pub struct WorkloadLog {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Touch counter per attribute file ordinal (grows on demand).
    touches: Vec<u64>,
    /// Scan tick at which each attribute was last touched.
    last_scan: Vec<u64>,
    /// Scan tick: one per `record_touches` call (i.e. per scan).
    scan: u64,
    /// Touches recorded since the last decay.
    since_decay: u64,
}

impl Inner {
    /// Staleness-aged heat of attribute `i`: the raw counter halved
    /// once per [`HALF_LIFE_SCANS`]-scan period since its last touch.
    fn aged_heat(&self, i: usize) -> u64 {
        let Some(&count) = self.touches.get(i) else {
            return 0;
        };
        let age = self.scan - self.last_scan.get(i).copied().unwrap_or(0);
        count >> (age / HALF_LIFE_SCANS).min(63)
    }
}

impl WorkloadLog {
    /// Fresh, empty log.
    pub fn new() -> WorkloadLog {
        WorkloadLog::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this lock cannot leave the counters in a
        // broken state (they are plain integers), so poisoning is
        // ignorable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one touch for each attribute a scan reads (file ordinals).
    /// Called once per query in scan preparation.
    pub fn record_touches(&self, attrs: &[u32]) {
        if attrs.is_empty() {
            return;
        }
        let mut g = self.lock();
        g.scan += 1;
        let now = g.scan;
        for &a in attrs {
            let i = a as usize;
            if g.touches.len() <= i {
                g.touches.resize(i + 1, 0);
                g.last_scan.resize(i + 1, 0);
            }
            g.touches[i] += 1;
            g.last_scan[i] = now;
        }
        g.since_decay += attrs.len() as u64;
        if g.since_decay >= DECAY_EVERY {
            g.since_decay = 0;
            for t in &mut g.touches {
                *t /= 2;
            }
        }
    }

    /// Decayed, staleness-aged heat of one attribute (0 when never
    /// touched).
    pub fn heat(&self, attr: u32) -> u64 {
        let g = self.lock();
        g.aged_heat(attr as usize)
    }

    /// Snapshot of every attribute's heat, indexed by file ordinal.
    pub fn heats(&self) -> Vec<u64> {
        let g = self.lock();
        (0..g.touches.len()).map(|i| g.aged_heat(i)).collect()
    }

    /// Forget everything (table dropped / aux structures cleared).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.touches.clear();
        g.last_scan.clear();
        g.scan = 0;
        g.since_decay = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_accumulate_per_attribute() {
        let log = WorkloadLog::new();
        log.record_touches(&[0, 2]);
        log.record_touches(&[2]);
        assert_eq!(log.heat(0), 1);
        assert_eq!(log.heat(1), 0);
        assert_eq!(log.heat(2), 2);
        assert_eq!(log.heats(), vec![1, 0, 2]);
    }

    #[test]
    fn decay_halves_counters() {
        let log = WorkloadLog::new();
        for _ in 0..DECAY_EVERY {
            log.record_touches(&[3]);
        }
        // The halving fires exactly when the threshold is reached.
        assert_eq!(log.heat(3), DECAY_EVERY / 2);
        log.record_touches(&[3]);
        assert_eq!(log.heat(3), DECAY_EVERY / 2 + 1);
    }

    #[test]
    fn hot_attributes_stay_ahead_of_cold_ones_through_decay() {
        let log = WorkloadLog::new();
        for i in 0..(3 * DECAY_EVERY) {
            log.record_touches(&[0]);
            if i % 16 == 0 {
                log.record_touches(&[1]);
            }
        }
        assert!(log.heat(0) > log.heat(1));
        assert!(log.heat(1) > 0);
    }

    #[test]
    fn clear_resets_everything() {
        let log = WorkloadLog::new();
        log.record_touches(&[5]);
        log.clear();
        assert_eq!(log.heat(5), 0);
        assert!(log.heats().is_empty());
    }

    #[test]
    fn empty_touch_set_is_a_no_op() {
        let log = WorkloadLog::new();
        log.record_touches(&[]);
        assert!(log.heats().is_empty());
    }

    #[test]
    fn stale_heat_fades_so_shifted_workloads_win() {
        let log = WorkloadLog::new();
        // An old epoch hammers attributes 0-9 twice each...
        for _ in 0..2 {
            for a in 0..10u32 {
                log.record_touches(&[a]);
            }
        }
        // ...then the workload shifts to attributes 30-39.
        for a in 30..40u32 {
            log.record_touches(&[a]);
        }
        // The freshly touched attribute must outrank the abandoned
        // epoch's higher raw count, or eviction can never adapt.
        assert!(
            log.heat(39) > log.heat(0),
            "fresh {} vs stale {}",
            log.heat(39),
            log.heat(0)
        );
    }
}
