//! Per-chunk cache staging for parallel scans.
//!
//! Workers of a chunked scan convert field values without knowing the
//! chunk's *global* row ids (those depend on how many rows earlier chunks
//! turn out to hold) and without touching the shared [`crate::RawCache`].
//! Each worker fills a [`ChunkStage`]; the merge phase — which processes
//! chunks in file order and therefore knows each chunk's first global row
//! — cuts the staged values into block-aligned [`CachedColumn`]s and
//! inserts them into the store in one short critical section.

use nodb_common::{DataType, Value};

use crate::column::{CachedColumn, ColumnBuilder};

/// Values converted by one chunk worker, keyed by chunk-local row.
#[derive(Debug)]
pub struct ChunkStage {
    /// (attribute file ordinal, value type) per staged column.
    attrs: Vec<(u32, DataType)>,
    /// `(chunk-local row, value)` pairs per staged column, pushed in
    /// ascending row order.
    staged: Vec<Vec<(u32, Value)>>,
}

impl ChunkStage {
    /// Start staging for the given attributes.
    pub fn new(attrs: Vec<(u32, DataType)>) -> ChunkStage {
        let staged = attrs.iter().map(|_| Vec::new()).collect();
        ChunkStage { attrs, staged }
    }

    /// Record a converted value: `idx` is the position in the attr set
    /// passed to [`ChunkStage::new`], `local_row` the chunk-local row.
    pub fn push(&mut self, idx: usize, local_row: u32, value: Value) {
        self.staged[idx].push((local_row, value));
    }

    /// True when no values were staged.
    pub fn is_empty(&self) -> bool {
        self.staged.iter().all(|v| v.is_empty())
    }

    /// Append another worker's stage whose chunk starts `row_offset` rows
    /// after this one's. Both must cover the same attribute set.
    pub fn append(&mut self, other: ChunkStage, row_offset: u32) {
        debug_assert_eq!(self.attrs, other.attrs);
        for (dst, src) in self.staged.iter_mut().zip(other.staged) {
            dst.extend(src.into_iter().map(|(r, v)| (r + row_offset, v)));
        }
    }

    /// Cut the stage into per-`(block, attr)` columns. `first_row` is the
    /// global row id of chunk-local row 0, `region_rows` the total rows
    /// of the staged region (bounding each block's column extent), and
    /// `block_rows` the cache/posmap block size. Columns whose block is
    /// only partially covered carry holes, which
    /// [`CachedColumn::absorb`] fills when merged with neighbours.
    pub fn into_columns(
        self,
        first_row: u64,
        region_rows: u64,
        block_rows: usize,
    ) -> Vec<CachedColumn> {
        let br = block_rows.max(1) as u64;
        let region_end = first_row + region_rows;
        let mut out = Vec::new();
        for ((attr, dtype), vals) in self.attrs.into_iter().zip(self.staged) {
            let mut cur: Option<(u64, ColumnBuilder)> = None;
            for (local, v) in vals {
                let row = first_row + local as u64;
                let block = row / br;
                if cur.as_ref().map(|(b, _)| *b) != Some(block) {
                    if let Some((_, b)) = cur.take() {
                        out.push(b.build());
                    }
                    let block_start = block * br;
                    let extent = (region_end.min((block + 1) * br) - block_start) as usize;
                    cur = Some((block, ColumnBuilder::new(block, attr, dtype, extent)));
                }
                if let Some((_, b)) = cur.as_mut() {
                    b.set((row % br) as usize, &v);
                }
            }
            if let Some((_, b)) = cur.take() {
                out.push(b.build());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_cuts_block_aligned_columns() {
        let mut s = ChunkStage::new(vec![(2, DataType::Int32)]);
        for r in 0..10u32 {
            s.push(0, r, Value::Int32(r as i32));
        }
        // Rows 0..10 at block size 4: blocks 0 (4), 1 (4), 2 (2 rows).
        let cols = s.into_columns(0, 10, 4);
        assert_eq!(cols.len(), 3);
        assert_eq!(
            cols.iter().map(|c| (c.block, c.rows())).collect::<Vec<_>>(),
            vec![(0, 4), (1, 4), (2, 2)]
        );
        assert!(cols.iter().all(|c| c.is_complete()));
        assert_eq!(cols[1].get(0), Some(Value::Int32(4)));
        assert_eq!(cols[2].get(1), Some(Value::Int32(9)));
    }

    #[test]
    fn mid_block_start_leaves_holes_that_absorb_fills() {
        // Region = global rows 2..6 of block size 4: a partial tail of
        // block 0 and a partial head of block 1.
        let mut s = ChunkStage::new(vec![(0, DataType::Int32)]);
        for r in 0..4u32 {
            s.push(0, r, Value::Int32(2 + r as i32));
        }
        let cols = s.into_columns(2, 4, 4);
        assert_eq!(cols.len(), 2);
        let b0 = &cols[0];
        assert_eq!((b0.block, b0.rows()), (0, 4));
        assert_eq!(b0.get(0), None, "rows before the region are holes");
        assert_eq!(b0.get(2), Some(Value::Int32(2)));
        let b1 = &cols[1];
        assert_eq!((b1.block, b1.rows()), (1, 2));
        assert_eq!(b1.get(0), Some(Value::Int32(4)));
        assert_eq!(b1.get(1), Some(Value::Int32(5)));

        // A neighbouring stage covering the hole merges cleanly.
        let mut head = ChunkStage::new(vec![(0, DataType::Int32)]);
        head.push(0, 0, Value::Int32(0));
        head.push(0, 1, Value::Int32(1));
        let mut merged = head.into_columns(0, 2, 4).remove(0);
        merged.absorb(b0);
        assert_eq!(merged.get(0), Some(Value::Int32(0)));
        assert_eq!(merged.get(3), Some(Value::Int32(3)));
        assert!(merged.is_complete());
    }

    #[test]
    fn append_offsets_local_rows() {
        let mut a = ChunkStage::new(vec![(1, DataType::Int32)]);
        a.push(0, 0, Value::Int32(10));
        let mut b = ChunkStage::new(vec![(1, DataType::Int32)]);
        b.push(0, 0, Value::Int32(11));
        a.append(b, 1);
        let cols = a.into_columns(0, 2, 8);
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].get(0), Some(Value::Int32(10)));
        assert_eq!(cols[0].get(1), Some(Value::Int32(11)));
    }

    #[test]
    fn empty_stage_yields_nothing() {
        let s = ChunkStage::new(vec![(0, DataType::Text)]);
        assert!(s.is_empty());
        assert!(s.into_columns(0, 100, 16).is_empty());
    }
}
