//! Criterion smoke versions of every figure: tiny inputs, one comparison
//! per figure, so `cargo bench` exercises the full harness quickly. The
//! real series come from the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nodb_bench::data::{fits_file, micro_file, tpch_dir};
use nodb_bench::Scale;
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_fits::procedural::ProcAgg;
use nodb_fits::{FitsProvider, ProceduralFits};
use nodb_tpch::{queries, TpchGen};

const SCALE: Scale = Scale::Small;

fn micro_engine(cfg: NoDbConfig, mode: AccessMode) -> NoDb {
    let (path, schema) = micro_file(SCALE.micro_rows(), SCALE.micro_cols(), None).expect("data");
    let mut db = NoDb::new(cfg).expect("engine");
    db.register_csv("t", &path, schema, CsvOptions::default(), mode)
        .expect("register");
    db
}

/// Figures 3/5: the core variant comparison on one warm query.
fn fig_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_variants_warm_query");
    g.sample_size(10);
    let sql = "select c4, c11, c17, c22, c28 from t";
    for (name, cfg, mode) in [
        (
            "baseline",
            NoDbConfig::baseline(),
            AccessMode::ExternalFiles,
        ),
        ("pm", NoDbConfig::pm_only(), AccessMode::InSitu),
        ("cache", NoDbConfig::cache_only(), AccessMode::InSitu),
        ("pm_c", NoDbConfig::postgres_raw(), AccessMode::InSitu),
    ] {
        let db = micro_engine(cfg, mode);
        db.query(sql).expect("warm"); // build structures
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| db.query(sql).expect("query"));
        });
    }
    g.finish();
}

/// Figure 3: tight vs unlimited positional-map budget.
fn fig_budget(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_posmap_budget");
    g.sample_size(10);
    let sql = "select c7, c23, c41 from t";
    for (name, budget) in [
        ("tiny_budget", Some(nodb_common::ByteSize::kb(16))),
        ("unlimited", None),
    ] {
        let mut cfg = NoDbConfig::pm_only();
        cfg.posmap_budget = budget;
        let db = micro_engine(cfg, AccessMode::InSitu);
        db.query(sql).expect("warm");
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| db.query(sql).expect("query"));
        });
    }
    g.finish();
}

/// Figures 7/8: in-situ vs loaded engine on one selective aggregate.
fn fig_systems(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_systems");
    g.sample_size(10);
    let sql = "select sum(c1), sum(c2), sum(c3) from t where c0 < 200000000";
    let raw = micro_engine(NoDbConfig::postgres_raw(), AccessMode::InSitu);
    raw.query(sql).expect("warm");
    g.bench_function("postgresraw_warm", |b| {
        b.iter(|| raw.query(sql).expect("query"));
    });
    let mut loaded = micro_engine(NoDbConfig::postgres_raw(), AccessMode::Loaded);
    loaded.load_table("t").expect("load");
    g.bench_function("postgresql_loaded", |b| {
        b.iter(|| loaded.query(sql).expect("query"));
    });
    let ext = micro_engine(NoDbConfig::baseline(), AccessMode::ExternalFiles);
    g.bench_function("external_files", |b| {
        b.iter(|| ext.query(sql).expect("query"));
    });
    g.finish();
}

/// Figures 9/10/12: TPC-H Q1 across engines and planner settings.
fn fig_tpch(c: &mut Criterion) {
    let dir = tpch_dir(SCALE.tpch_sf()).expect("tpch data");
    let build = |cfg: NoDbConfig, mode: AccessMode| {
        let mut db = NoDb::new(cfg).expect("engine");
        for t in TpchGen::table_names() {
            db.register_csv(
                t,
                &dir.join(format!("{t}.tbl")),
                TpchGen::schema(t).expect("schema"),
                CsvOptions::pipe(),
                mode,
            )
            .expect("register");
        }
        db
    };
    let mut g = c.benchmark_group("fig10_tpch_q1_warm");
    g.sample_size(10);
    let pmc = build(NoDbConfig::postgres_raw(), AccessMode::InSitu);
    pmc.query(queries::Q1).expect("warm");
    g.bench_function("postgresraw_pm_c", |b| {
        b.iter(|| pmc.query(queries::Q1).expect("q"));
    });
    let mut nostats = NoDbConfig::postgres_raw();
    nostats.enable_stats = false;
    let no = build(nostats, AccessMode::InSitu);
    no.query(queries::Q1).expect("warm");
    g.bench_function("postgresraw_no_stats_fig12", |b| {
        b.iter(|| no.query(queries::Q1).expect("q"));
    });
    let mut pg = build(NoDbConfig::postgres_raw(), AccessMode::Loaded);
    pg.load_table("lineitem").expect("load");
    g.bench_function("postgresql_loaded", |b| {
        b.iter(|| pg.query(queries::Q1).expect("q"));
    });
    g.finish();
}

/// Figure 11: FITS aggregate, cold procedural vs cached in-situ.
fn fig_fits(c: &mut Criterion) {
    let path = fits_file(SCALE.fits_rows()).expect("fits data");
    let mut g = c.benchmark_group("fig11_fits");
    g.sample_size(10);
    g.bench_function("cfitsio_style", |b| {
        let mut proc = ProceduralFits::open(&path).expect("open");
        b.iter(|| proc.aggregate("f3", ProcAgg::Max).expect("agg"));
    });
    let provider = FitsProvider::open(&path, None, true).expect("open");
    let schema = provider.table().schema().expect("schema");
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).expect("engine");
    db.register_provider("sky", schema, Box::new(provider))
        .expect("register");
    db.query("select max(f3) from sky").expect("warm");
    g.bench_function("postgresraw_cached", |b| {
        b.iter(|| db.query("select max(f3) from sky").expect("q"));
    });
    g.finish();
}

/// Figure 13: wide attributes, loaded vs in-situ.
fn fig_width(c: &mut Criterion) {
    let rows = SCALE.micro_rows() / 4;
    let mut g = c.benchmark_group("fig13_width");
    g.sample_size(10);
    for width in [16usize, 64] {
        let (path, schema) = micro_file(rows, SCALE.micro_cols(), Some(width)).expect("data");
        let sql = "select max(c1), max(c2) from t";
        let mut loaded = NoDb::new(NoDbConfig::postgres_raw()).expect("engine");
        loaded
            .register_csv(
                "t",
                &path,
                schema.clone(),
                CsvOptions::default(),
                AccessMode::Loaded,
            )
            .expect("register");
        loaded.load_table("t").expect("load");
        g.bench_function(BenchmarkId::new("postgresql", width), |b| {
            b.iter(|| loaded.query(sql).expect("q"));
        });
        let mut raw = NoDb::new(NoDbConfig::postgres_raw()).expect("engine");
        raw.register_csv(
            "t",
            &path,
            schema,
            CsvOptions::default(),
            AccessMode::InSitu,
        )
        .expect("register");
        raw.query(sql).expect("warm");
        g.bench_function(BenchmarkId::new("postgresraw", width), |b| {
            b.iter(|| raw.query(sql).expect("q"));
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig_variants,
    fig_budget,
    fig_systems,
    fig_tpch,
    fig_fits,
    fig_width
);
criterion_main!(figures);
