//! Logical data types supported by the engine.

use std::fmt;

use crate::error::{NoDbError, Result};

/// Logical column type.
///
/// The set mirrors what PostgresRaw needed for its evaluation: integers of
/// two widths, doubles, variable-length text, calendar dates and booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string (ASCII in the raw files we generate).
    Text,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// Boolean, serialized as `t`/`f` in CSV.
    Bool,
}

impl DataType {
    /// Parse a type name as used in schema declarations (`int`, `bigint`,
    /// `double`, `text`, `date`, `bool`). Case-insensitive, with a few
    /// common aliases.
    pub fn parse(name: &str) -> Result<DataType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "int32" | "integer" => Ok(DataType::Int32),
            "bigint" | "int64" | "long" => Ok(DataType::Int64),
            "double" | "float64" | "float" | "decimal" | "numeric" | "real" => {
                Ok(DataType::Float64)
            }
            "text" | "varchar" | "char" | "string" => Ok(DataType::Text),
            "date" => Ok(DataType::Date),
            "bool" | "boolean" => Ok(DataType::Bool),
            other => Err(NoDbError::catalog(format!("unknown data type `{other}`"))),
        }
    }

    /// Whether values of this type order and compare numerically.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }

    /// Estimated in-memory width of one binary value, used by the cache for
    /// byte accounting. Text uses an average estimate; exact sizes are
    /// accounted when the value is stored.
    pub fn approx_binary_width(self) -> usize {
        match self {
            DataType::Int32 | DataType::Date => 4,
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Bool => 1,
            DataType::Text => 16,
        }
    }

    /// Relative CPU cost of converting one ASCII field of this type to its
    /// binary form. The PostgresRaw cache prioritizes keeping values that
    /// are expensive to re-convert (§4.3: "numerical attributes are
    /// significantly more expensive to convert"). Strings need no
    /// conversion, merely a copy, hence the low figure.
    pub fn conversion_cost(self) -> u32 {
        match self {
            DataType::Float64 => 8,
            DataType::Int64 => 6,
            DataType::Date => 6,
            DataType::Int32 => 5,
            DataType::Bool => 2,
            DataType::Text => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int32 => "int",
            DataType::Int64 => "bigint",
            DataType::Float64 => "double",
            DataType::Text => "text",
            DataType::Date => "date",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases_case_insensitively() {
        assert_eq!(DataType::parse("INTEGER").unwrap(), DataType::Int32);
        assert_eq!(DataType::parse("BigInt").unwrap(), DataType::Int64);
        assert_eq!(DataType::parse("decimal").unwrap(), DataType::Float64);
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("DATE").unwrap(), DataType::Date);
        assert_eq!(DataType::parse("boolean").unwrap(), DataType::Bool);
    }

    #[test]
    fn parse_rejects_unknown_names() {
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for dt in [
            DataType::Int32,
            DataType::Int64,
            DataType::Float64,
            DataType::Text,
            DataType::Date,
            DataType::Bool,
        ] {
            assert_eq!(DataType::parse(&dt.to_string()).unwrap(), dt);
        }
    }

    #[test]
    fn conversion_cost_ranks_numerics_above_text() {
        assert!(DataType::Float64.conversion_cost() > DataType::Text.conversion_cost());
        assert!(DataType::Int32.conversion_cost() > DataType::Text.conversion_cost());
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int32.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }
}
