//! In-situ FITS table provider for the NoDB engine.
//!
//! Binary tables have fixed-width rows, so every attribute sits at an
//! analytically known offset — "parsing may not be required since each
//! tuple and attribute is usually located in a well-known location;
//! techniques such as caching become more important" (§5.3). The provider
//! therefore skips the positional map entirely and adapts through the
//! same block-aligned binary cache the CSV engine uses.

use std::sync::Arc;

use parking_lot::Mutex;

use nodb_cache::{CacheConfig, ColumnBuilder, RawCache};
use nodb_common::{ByteSize, Result, Row, Value};
use nodb_exec::{eval_predicate, BoxOp, Operator, TableProvider};
use nodb_sql::BoundExpr;

use crate::reader::FitsTable;

/// Rows per cache block.
const BLOCK_ROWS: u64 = 4096;

/// Shared per-file state: the cache plus read accounting.
pub struct FitsRuntime {
    cache: RawCache,
    /// Bytes read from the raw file (observability; cache hits add none).
    pub bytes_read: u64,
    /// Scans served.
    pub scans: u64,
}

/// An adaptive in-situ provider over one FITS binary table.
pub struct FitsProvider {
    table: FitsTable,
    runtime: Arc<Mutex<FitsRuntime>>,
    cache_enabled: bool,
}

impl FitsProvider {
    /// Open a provider with an optional cache budget.
    pub fn open(
        path: &std::path::Path,
        cache_budget: Option<ByteSize>,
        cache_enabled: bool,
    ) -> Result<FitsProvider> {
        Ok(FitsProvider {
            table: FitsTable::open(path)?,
            runtime: Arc::new(Mutex::new(FitsRuntime {
                cache: RawCache::new(CacheConfig {
                    budget: cache_budget,
                    ..CacheConfig::default()
                }),
                bytes_read: 0,
                scans: 0,
            })),
            cache_enabled,
        })
    }

    /// The parsed table (schema, row count).
    pub fn table(&self) -> &FitsTable {
        &self.table
    }

    /// Observability snapshot: `(bytes_read, cache_bytes, scans)`.
    pub fn stats(&self) -> (u64, usize, u64) {
        let rt = self.runtime.lock();
        (rt.bytes_read, rt.cache.bytes(), rt.scans)
    }
}

impl TableProvider for FitsProvider {
    fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp> {
        self.runtime.lock().scans += 1;
        Ok(Box::new(FitsScanOp {
            table: self.table.clone(),
            runtime: Arc::clone(&self.runtime),
            projection: projection.to_vec(),
            filters: filters.to_vec(),
            cache_enabled: self.cache_enabled,
            next_row: 0,
            out: std::collections::VecDeque::new(),
        }))
    }
}

struct FitsScanOp {
    table: FitsTable,
    runtime: Arc<Mutex<FitsRuntime>>,
    projection: Vec<usize>,
    filters: Vec<BoundExpr>,
    cache_enabled: bool,
    next_row: u64,
    out: std::collections::VecDeque<Row>,
}

impl FitsScanOp {
    fn process_block(&mut self) -> Result<()> {
        let block = self.next_row / BLOCK_ROWS;
        let start = block * BLOCK_ROWS;
        let end = (start + BLOCK_ROWS).min(self.table.rows);
        let rows = (end - start) as usize;
        let mut rt = self.runtime.lock();

        // Which projected columns are already cached for this block?
        let mut col_values: Vec<Option<Vec<Value>>> = vec![None; self.projection.len()];
        let mut missing: Vec<usize> = Vec::new();
        if self.cache_enabled {
            for (i, &attr) in self.projection.iter().enumerate() {
                match rt.cache.get(block, attr as u32) {
                    Some(col) if col.is_complete() => {
                        let vals: Vec<Value> = (0..rows)
                            .map(|r| col.get(r).expect("complete column"))
                            .collect();
                        col_values[i] = Some(vals);
                    }
                    _ => missing.push(i),
                }
            }
        } else {
            missing = (0..self.projection.len()).collect();
        }

        // Fetch missing columns from the file (binary decode = the only
        // conversion cost) and cache them.
        if !missing.is_empty() {
            let cols: Vec<usize> = missing.iter().map(|&i| self.projection[i]).collect();
            let fetched = self.table.read_rows(start, end, &cols)?;
            rt.bytes_read += (end - start) * self.table.row_bytes as u64;
            let mut builders: Vec<ColumnBuilder> = missing
                .iter()
                .map(|&i| {
                    let attr = self.projection[i];
                    ColumnBuilder::new(
                        block,
                        attr as u32,
                        self.table.columns[attr].ftype.data_type(),
                        rows,
                    )
                })
                .collect();
            let mut cols_out: Vec<Vec<Value>> =
                missing.iter().map(|_| Vec::with_capacity(rows)).collect();
            for (r, row) in fetched.iter().enumerate() {
                for (k, v) in row.values().iter().enumerate() {
                    builders[k].set(r, v);
                    cols_out[k].push(v.clone());
                }
            }
            if self.cache_enabled {
                for b in builders {
                    rt.cache.insert(b.build());
                }
            }
            for (k, &i) in missing.iter().enumerate() {
                col_values[i] = Some(std::mem::take(&mut cols_out[k]));
            }
        }
        drop(rt);

        // Assemble rows and filter.
        'rows: for r in 0..rows {
            let mut row = Row::with_capacity(self.projection.len());
            for vals in col_values.iter() {
                row.push(vals.as_ref().expect("all columns resolved")[r].clone());
            }
            for f in &self.filters {
                if !eval_predicate(f, &row)? {
                    continue 'rows;
                }
            }
            self.out.push_back(row);
        }
        self.next_row = end;
        Ok(())
    }
}

impl Operator for FitsScanOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            if let Some(r) = self.out.pop_front() {
                return Ok(Some(r));
            }
            if self.next_row >= self.table.rows {
                return Ok(None);
            }
            self.process_block()?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FitsType;
    use crate::writer::FitsTableWriter;
    use nodb_common::TempDir;
    use nodb_exec::run_to_vec;
    use nodb_sql::BinOp;

    fn sample(rows: i32) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("fits").unwrap();
        let p = td.file("t.fits");
        let mut w = FitsTableWriter::create(
            &p,
            vec![
                ("id".into(), FitsType::J),
                ("flux".into(), FitsType::D),
                ("mag".into(), FitsType::D),
            ],
        )
        .unwrap();
        for i in 0..rows {
            w.write_row(&Row(vec![
                Value::Int32(i),
                Value::Float64(i as f64),
                Value::Float64((i % 100) as f64),
            ]))
            .unwrap();
        }
        w.finish().unwrap();
        (td, p)
    }

    #[test]
    fn scan_projects_and_filters() {
        let (_td, p) = sample(10_000);
        let prov = FitsProvider::open(&p, None, true).unwrap();
        let filter = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(100))),
        };
        let rows = run_to_vec(prov.scan(&[0, 1], &[filter]).unwrap()).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[5], Row(vec![Value::Int32(5), Value::Float64(5.0)]));
    }

    #[test]
    fn second_scan_is_served_from_cache() {
        let (_td, p) = sample(20_000);
        let prov = FitsProvider::open(&p, None, true).unwrap();
        run_to_vec(prov.scan(&[1], &[]).unwrap()).unwrap();
        let (bytes1, cache1, _) = prov.stats();
        assert!(bytes1 > 0);
        assert!(cache1 > 0);
        run_to_vec(prov.scan(&[1], &[]).unwrap()).unwrap();
        let (bytes2, _, _) = prov.stats();
        assert_eq!(bytes2, bytes1, "second scan must not touch the file");
        // A different column misses and reads again.
        run_to_vec(prov.scan(&[2], &[]).unwrap()).unwrap();
        let (bytes3, _, _) = prov.stats();
        assert!(bytes3 > bytes2);
    }

    #[test]
    fn disabled_cache_always_rereads() {
        let (_td, p) = sample(5000);
        let prov = FitsProvider::open(&p, None, false).unwrap();
        run_to_vec(prov.scan(&[1], &[]).unwrap()).unwrap();
        let (bytes1, cache1, _) = prov.stats();
        assert_eq!(cache1, 0);
        run_to_vec(prov.scan(&[1], &[]).unwrap()).unwrap();
        let (bytes2, _, _) = prov.stats();
        assert_eq!(bytes2, bytes1 * 2);
    }

    #[test]
    fn agrees_with_procedural_baseline() {
        let (_td, p) = sample(3000);
        let prov = FitsProvider::open(&p, None, true).unwrap();
        let rows = run_to_vec(prov.scan(&[1], &[]).unwrap()).unwrap();
        let max_scan = rows
            .iter()
            .map(|r| r.get(0).as_f64().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut proc = crate::procedural::ProceduralFits::open(&p).unwrap();
        let max_proc = proc
            .aggregate("flux", crate::procedural::ProcAgg::Max)
            .unwrap();
        assert_eq!(max_scan, max_proc);
    }
}
