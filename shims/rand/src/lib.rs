//! Minimal `rand` 0.8 API shim.
//!
//! Implements a deterministic xoshiro256** generator behind the
//! `StdRng` / `SeedableRng` / `Rng` names the workspace's data
//! generators use. Statistical quality is more than adequate for data
//! generation and property tests; this is not a cryptographic RNG.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// SplitMix64 as the reference xoshiro implementation recommends.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types with a uniform sampler over a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `[lo, hi)`, or `[lo, hi]` when
    /// `inclusive`. Panics if the interval is empty.
    fn sample_uniform(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

// A 64-bit modulo's bias is < 2^-32 for every span the workspace uses;
// Lemire rejection would be over-engineering here.
fn sample_span(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut dyn RngCore, lo: $t, hi: $t, inclusive: bool) -> $t {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                if span > u64::MAX as i128 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                (lo_w + sample_span(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(rng: &mut dyn RngCore, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample. Panics if the range is empty.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// generator.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(3u32..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn literal_inference_matches_real_rand() {
        let mut r = StdRng::seed_from_u64(42);
        // T inferred from use site, as rand 0.8 allows.
        let len: usize = r.gen_range(10..=30);
        assert!((10..=30).contains(&len));
        // T defaulted to i32 when unconstrained.
        let s = r.gen_range(0..25).to_string();
        assert!(s.parse::<i32>().is_ok());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
