//! Row (tuple) representation exchanged by operators.

use std::fmt;

use crate::value::Value;

/// A tuple of values.
///
/// After *selective tuple formation* (§4.1) a row carries only the
/// attributes a query needs, so positional access is always relative to the
/// operator's output schema, not the raw file layout.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row(Vec::new())
    }

    /// A row with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Row {
        Row(Vec::with_capacity(n))
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at ordinal `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Append a value.
    pub fn push(&mut self, v: Value) {
        self.0.push(v);
    }

    /// Concatenate two rows (used by joins).
    pub fn concat(mut self, other: &Row) -> Row {
        self.0.extend_from_slice(&other.0);
        self
    }

    /// Approximate heap footprint, for memory accounting.
    pub fn heap_size(&self) -> usize {
        self.0.iter().map(Value::heap_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row(v)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_joins_attribute_lists() {
        let a = Row(vec![Value::Int32(1)]);
        let b = Row(vec![Value::Text("x".into()), Value::Null]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1), &Value::Text("x".into()));
    }

    #[test]
    fn display_is_pipe_separated() {
        let r = Row(vec![Value::Int32(1), Value::Text("a".into())]);
        assert_eq!(r.to_string(), "1 | a");
    }
}
