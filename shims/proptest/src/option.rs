//! Option strategies (`proptest::option::of`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for `Option<T>`: `None` a quarter of the time, matching
/// real proptest's default weighting toward `Some`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
