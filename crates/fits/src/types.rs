//! FITS binary-table column types (TFORM codes).

use nodb_common::{DataType, NoDbError, Result};

/// Supported BINTABLE column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitsType {
    /// `J` — 32-bit big-endian integer.
    J,
    /// `K` — 64-bit big-endian integer.
    K,
    /// `E` — 32-bit big-endian IEEE float.
    E,
    /// `D` — 64-bit big-endian IEEE float.
    D,
    /// `nA` — fixed-width ASCII, space-padded.
    A(usize),
}

impl FitsType {
    /// Bytes per value.
    pub fn width(self) -> usize {
        match self {
            FitsType::J | FitsType::E => 4,
            FitsType::K | FitsType::D => 8,
            FitsType::A(n) => n,
        }
    }

    /// TFORM card value.
    pub fn tform(self) -> String {
        match self {
            FitsType::J => "1J".to_string(),
            FitsType::K => "1K".to_string(),
            FitsType::E => "1E".to_string(),
            FitsType::D => "1D".to_string(),
            FitsType::A(n) => format!("{n}A"),
        }
    }

    /// Parse a TFORM value (repeat count must be 1 for numerics).
    pub fn parse_tform(s: &str) -> Result<FitsType> {
        let s = s.trim().trim_matches('\'').trim();
        let split = s
            .find(|c: char| c.is_ascii_alphabetic())
            .ok_or_else(|| NoDbError::parse(format!("bad TFORM `{s}`")))?;
        let (count, code) = s.split_at(split);
        let count: usize = if count.is_empty() {
            1
        } else {
            count
                .parse()
                .map_err(|_| NoDbError::parse(format!("bad TFORM count `{s}`")))?
        };
        match code {
            "J" if count == 1 => Ok(FitsType::J),
            "K" if count == 1 => Ok(FitsType::K),
            "E" if count == 1 => Ok(FitsType::E),
            "D" if count == 1 => Ok(FitsType::D),
            "A" => Ok(FitsType::A(count)),
            _ => Err(NoDbError::parse(format!("unsupported TFORM `{s}`"))),
        }
    }

    /// The engine-side logical type (`E` widens to `Float64`).
    pub fn data_type(self) -> DataType {
        match self {
            FitsType::J => DataType::Int32,
            FitsType::K => DataType::Int64,
            FitsType::E | FitsType::D => DataType::Float64,
            FitsType::A(_) => DataType::Text,
        }
    }

    /// The natural FITS type for an engine type.
    pub fn from_data_type(dt: DataType, text_width: usize) -> Result<FitsType> {
        match dt {
            DataType::Int32 => Ok(FitsType::J),
            DataType::Int64 => Ok(FitsType::K),
            DataType::Float64 => Ok(FitsType::D),
            DataType::Text => Ok(FitsType::A(text_width)),
            other => Err(NoDbError::catalog(format!(
                "no FITS column type for `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tform_roundtrip() {
        for t in [
            FitsType::J,
            FitsType::K,
            FitsType::E,
            FitsType::D,
            FitsType::A(12),
        ] {
            assert_eq!(FitsType::parse_tform(&t.tform()).unwrap(), t);
        }
        assert_eq!(FitsType::parse_tform("'16A '").unwrap(), FitsType::A(16));
        assert_eq!(FitsType::parse_tform("D").unwrap(), FitsType::D);
        assert!(FitsType::parse_tform("3J").is_err());
        assert!(FitsType::parse_tform("X").is_err());
    }

    #[test]
    fn widths() {
        assert_eq!(FitsType::J.width(), 4);
        assert_eq!(FitsType::D.width(), 8);
        assert_eq!(FitsType::A(7).width(), 7);
    }
}
