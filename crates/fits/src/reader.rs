//! FITS reading: header parsing and random row access.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use nodb_common::{Field, NoDbError, Result, Row, Schema, Value};

use crate::types::FitsType;
use crate::{BLOCK, CARD};

/// One parsed column.
#[derive(Debug, Clone)]
pub struct FitsColumn {
    /// Column name (TTYPEn).
    pub name: String,
    /// Column type (TFORMn).
    pub ftype: FitsType,
    /// Byte offset inside a row.
    pub offset: usize,
}

/// A parsed FITS binary table (header only; data read on demand).
#[derive(Debug, Clone)]
pub struct FitsTable {
    path: PathBuf,
    /// Columns in file order.
    pub columns: Vec<FitsColumn>,
    /// Bytes per row.
    pub row_bytes: usize,
    /// Rows in the table.
    pub rows: u64,
    /// Byte offset of the first data row.
    pub data_start: u64,
}

fn parse_card(card: &[u8]) -> (String, String) {
    let text = String::from_utf8_lossy(card);
    let key = text[..8.min(text.len())].trim().to_string();
    let rest = if text.len() > 10 && &text[8..10] == "= " {
        let v = &text[10..];
        match v.find('/') {
            Some(i) => v[..i].trim().to_string(),
            None => v.trim().to_string(),
        }
    } else {
        String::new()
    };
    (key, rest)
}

impl FitsTable {
    /// Open and parse the headers of `path`.
    pub fn open(path: &Path) -> Result<FitsTable> {
        let mut f = File::open(path)?;
        // Skip primary HDU (header blocks until END; NAXIS=0 ⇒ no data).
        let primary_cards = read_header(&mut f)?;
        let naxis: usize = header_value(&primary_cards, "NAXIS")?
            .parse()
            .map_err(|_| NoDbError::parse("bad NAXIS"))?;
        if naxis != 0 {
            return Err(NoDbError::parse(
                "only empty primary HDUs are supported (tables live in extensions)",
            ));
        }
        // BINTABLE extension header.
        let ext_cards = read_header(&mut f)?;
        let xt = header_value(&ext_cards, "XTENSION")?;
        if !xt.contains("BINTABLE") {
            return Err(NoDbError::parse(format!(
                "expected BINTABLE extension, found {xt}"
            )));
        }
        let row_bytes: usize = header_value(&ext_cards, "NAXIS1")?
            .parse()
            .map_err(|_| NoDbError::parse("bad NAXIS1"))?;
        let rows: u64 = header_value(&ext_cards, "NAXIS2")?
            .parse()
            .map_err(|_| NoDbError::parse("bad NAXIS2"))?;
        let tfields: usize = header_value(&ext_cards, "TFIELDS")?
            .parse()
            .map_err(|_| NoDbError::parse("bad TFIELDS"))?;
        let mut columns = Vec::with_capacity(tfields);
        let mut offset = 0usize;
        for i in 1..=tfields {
            let name = header_value(&ext_cards, &format!("TTYPE{i}"))?
                .trim_matches('\'')
                .trim()
                .to_string();
            let ftype = FitsType::parse_tform(&header_value(&ext_cards, &format!("TFORM{i}"))?)?;
            columns.push(FitsColumn {
                name,
                ftype,
                offset,
            });
            offset += ftype.width();
        }
        if offset != row_bytes {
            return Err(NoDbError::parse(format!(
                "row width mismatch: TFORMs sum to {offset}, NAXIS1 is {row_bytes}"
            )));
        }
        let data_start = f.stream_position()?;
        Ok(FitsTable {
            path: path.to_path_buf(),
            columns,
            row_bytes,
            rows,
            data_start,
        })
    }

    /// Engine-side schema of this table.
    pub fn schema(&self) -> Result<Schema> {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name.clone(), c.ftype.data_type()))
                .collect(),
        )
    }

    /// Decode one value from a raw row image.
    pub fn decode(&self, row_image: &[u8], col: usize) -> Result<Value> {
        let c = &self.columns[col];
        let at = c.offset;
        let v = match c.ftype {
            FitsType::J => Value::Int32(i32::from_be_bytes(
                row_image[at..at + 4]
                    .try_into()
                    .map_err(|_| NoDbError::parse("short row"))?,
            )),
            FitsType::K => Value::Int64(i64::from_be_bytes(
                row_image[at..at + 8]
                    .try_into()
                    .map_err(|_| NoDbError::parse("short row"))?,
            )),
            FitsType::E => Value::Float64(f32::from_be_bytes(
                row_image[at..at + 4]
                    .try_into()
                    .map_err(|_| NoDbError::parse("short row"))?,
            ) as f64),
            FitsType::D => Value::Float64(f64::from_be_bytes(
                row_image[at..at + 8]
                    .try_into()
                    .map_err(|_| NoDbError::parse("short row"))?,
            )),
            FitsType::A(n) => Value::Text(
                String::from_utf8_lossy(&row_image[at..at + n])
                    .trim_end()
                    .to_string(),
            ),
        };
        Ok(v)
    }

    /// Sequentially read rows `[from, to)`, decoding only `cols` (file
    /// ordinals) into rows in that order.
    pub fn read_rows(&self, from: u64, to: u64, cols: &[usize]) -> Result<Vec<Row>> {
        let to = to.min(self.rows);
        if from >= to {
            return Ok(Vec::new());
        }
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(
            self.data_start + from * self.row_bytes as u64,
        ))?;
        let n = (to - from) as usize;
        let mut buf = vec![0u8; n * self.row_bytes];
        f.read_exact(&mut buf)?;
        let mut out = Vec::with_capacity(n);
        for r in 0..n {
            let image = &buf[r * self.row_bytes..(r + 1) * self.row_bytes];
            let mut row = Row::with_capacity(cols.len());
            for &c in cols {
                row.push(self.decode(image, c)?);
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Column ordinal by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn read_header(f: &mut File) -> Result<Vec<(String, String)>> {
    let mut cards = Vec::new();
    loop {
        let mut block = [0u8; BLOCK];
        f.read_exact(&mut block)?;
        for i in 0..(BLOCK / CARD) {
            let c = &block[i * CARD..(i + 1) * CARD];
            let (key, value) = parse_card(c);
            if key == "END" {
                return Ok(cards);
            }
            if !key.is_empty() {
                cards.push((key, value));
            }
        }
    }
}

fn header_value(cards: &[(String, String)], key: &str) -> Result<String> {
    cards
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| NoDbError::parse(format!("missing header card `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::FitsTableWriter;
    use nodb_common::{DataType, TempDir};
    use proptest::prelude::*;

    fn write_sample(rows: i32) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("fits").unwrap();
        let p = td.file("t.fits");
        let mut w = FitsTableWriter::create(
            &p,
            vec![
                ("id".into(), FitsType::J),
                ("big".into(), FitsType::K),
                ("flux".into(), FitsType::D),
                ("mag".into(), FitsType::E),
                ("tag".into(), FitsType::A(6)),
            ],
        )
        .unwrap();
        for i in 0..rows {
            w.write_row(&Row(vec![
                Value::Int32(i),
                Value::Int64(i as i64 * 1_000_000_007),
                Value::Float64(i as f64 * 0.25),
                Value::Float64(i as f64 * 0.5),
                Value::Text(format!("s{i:04}")),
            ]))
            .unwrap();
        }
        w.finish().unwrap();
        (td, p)
    }

    #[test]
    fn header_roundtrip() {
        let (_td, p) = write_sample(10);
        let t = FitsTable::open(&p).unwrap();
        assert_eq!(t.rows, 10);
        assert_eq!(t.columns.len(), 5);
        assert_eq!(t.row_bytes, 4 + 8 + 8 + 4 + 6);
        assert_eq!(t.col_index("FLUX"), Some(2));
        let s = t.schema().unwrap();
        assert_eq!(s.field(2).dtype, DataType::Float64);
        assert_eq!(s.field(4).dtype, DataType::Text);
    }

    #[test]
    fn values_roundtrip() {
        let (_td, p) = write_sample(50);
        let t = FitsTable::open(&p).unwrap();
        let rows = t.read_rows(0, 50, &[0, 1, 2, 3, 4]).unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[7].get(0), &Value::Int32(7));
        assert_eq!(rows[7].get(1), &Value::Int64(7 * 1_000_000_007));
        assert_eq!(rows[7].get(2), &Value::Float64(1.75));
        assert_eq!(rows[7].get(3), &Value::Float64(3.5));
        assert_eq!(rows[7].get(4), &Value::Text("s0007".into()));
    }

    #[test]
    fn projected_and_ranged_reads() {
        let (_td, p) = write_sample(30);
        let t = FitsTable::open(&p).unwrap();
        let rows = t.read_rows(10, 13, &[2]).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], Row(vec![Value::Float64(2.5)]));
        // Clamped at table end.
        assert_eq!(t.read_rows(28, 99, &[0]).unwrap().len(), 2);
        assert!(t.read_rows(5, 5, &[0]).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn random_float_tables_roundtrip(
            vals in proptest::collection::vec(any::<i32>().prop_map(|x| x as f64 / 17.0), 1..100)
        ) {
            let td = TempDir::new("fits").unwrap();
            let p = td.file("t.fits");
            let mut w = FitsTableWriter::create(
                &p, vec![("v".into(), FitsType::D)]).unwrap();
            for v in &vals {
                w.write_row(&Row(vec![Value::Float64(*v)])).unwrap();
            }
            w.finish().unwrap();
            let t = FitsTable::open(&p).unwrap();
            let rows = t.read_rows(0, vals.len() as u64, &[0]).unwrap();
            for (r, v) in rows.iter().zip(&vals) {
                prop_assert_eq!(r.get(0), &Value::Float64(*v));
            }
        }
    }
}
