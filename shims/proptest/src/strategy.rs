//! The [`Strategy`] trait, combinators, and primitive strategies.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from the test's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Regenerates until `f` accepts the value. `reason` is reported if
    /// the retry budget is exhausted.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        // Local rejection with a generous retry budget; the workspace's
        // filters accept well over half the candidate space.
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest shim: prop_filter({:?}) rejected 10000 consecutive candidates",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Creates a union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights changed mid-draw")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// One value per element strategy, in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
