//! Shared low-level helpers for the lint arms: a token iterator over a
//! masked source, function-span detection, brace matching, and the
//! FNV-1a content hash used by the unsafe audit.

/// One token of a masked source: an identifier/number word or a single
/// punctuation character, with its 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok<'a> {
    /// Token text (word or one punctuation char).
    pub text: &'a str,
    /// 1-based source line.
    pub line: usize,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Tokenize a masked source (comments/strings already blanked) into
/// words and punctuation.
pub fn tokens(mask: &str) -> Vec<Tok<'_>> {
    let b = mask.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if is_word(c) {
            let start = i;
            while i < b.len() && is_word(b[i]) {
                i += 1;
            }
            out.push(Tok {
                text: &mask[start..i],
                line,
                offset: start,
            });
        } else {
            out.push(Tok {
                text: &mask[i..i + 1],
                line,
                offset: i,
            });
            i += 1;
        }
    }
    out
}

/// Function bodies in a token stream: `(start_line, end_line)` covering
/// the `fn` keyword through the body's closing brace. Functions without
/// a body (trait method signatures) are skipped.
pub fn fn_spans(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "fn" {
            let start_line = toks[i].line;
            // Scan to the body `{`, or a `;` ending a bodiless signature.
            // Generic bounds / where clauses contain no braces before the
            // body in this codebase's style.
            let mut j = i + 1;
            let mut found = None;
            while j < toks.len() {
                match toks[j].text {
                    "{" => {
                        found = Some(j);
                        break;
                    }
                    ";" => break,
                    _ => j += 1,
                }
            }
            if let Some(open) = found {
                if let Some(close) = matching_brace(toks, open) {
                    spans.push((start_line, toks[close].line));
                    // Nested fns are re-discovered by the outer loop, so
                    // advance past the `fn` token only.
                }
            }
        }
        i += 1;
    }
    spans
}

/// Index of the `}` matching the `{` at token index `open`.
pub fn matching_brace(toks: &[Tok<'_>], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// The innermost function span containing `line`, if any.
pub fn enclosing_fn(spans: &[(usize, usize)], line: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .filter(|&&(a, b)| line >= a && line <= b)
        .min_by_key(|&&(a, b)| b - a)
        .copied()
}

/// FNV-1a 64-bit over `bytes` with all ASCII whitespace runs collapsed
/// to a single space — the hash survives a pure re-format but changes
/// whenever the code itself changes.
pub fn fnv64_normalized(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut in_ws = false;
    for &b in bytes {
        let b = if b.is_ascii_whitespace() {
            if in_ws {
                continue;
            }
            in_ws = true;
            b' '
        } else {
            in_ws = false;
            b
        };
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 1-based line number of byte `offset` in `src`.
pub fn line_of(src: &str, offset: usize) -> usize {
    1 + src.as_bytes()[..offset.min(src.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// The trimmed text of 1-based `line` in `src` (empty if out of range) —
/// the content-addressed waiver key for a finding on that line.
pub fn line_text(src: &str, line: usize) -> String {
    src.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_and_fn_spans() {
        let src = "fn a() {\n  let x = 1;\n}\nstruct S;\nfn b() { {} }\n";
        let toks = tokens(src);
        let spans = fn_spans(&toks);
        assert_eq!(spans, vec![(1, 3), (5, 5)]);
        assert_eq!(enclosing_fn(&spans, 2), Some((1, 3)));
        assert_eq!(enclosing_fn(&spans, 4), None);
    }

    #[test]
    fn hash_ignores_reformat_but_not_content() {
        let a = fnv64_normalized(b"unsafe { foo(x,  y) }");
        let b = fnv64_normalized(b"unsafe {\n    foo(x,\n  y) }");
        let c = fnv64_normalized(b"unsafe { foo(x, z) }");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
