//! Web-log analysis: the paper's motivating scenario of querying a large,
//! growing log without ever loading it.
//!
//! ```text
//! cargo run --release -p nodb-core --example server_logs
//! ```
//!
//! Demonstrates: ad-hoc exploration of a raw file, appends becoming
//! visible immediately (§4.5), and the comparison against what a
//! conventional engine would require (full load first).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{Date, Schema, TempDir};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::{CsvOptions, CsvWriter};

const ROWS: usize = 200_000;

fn write_log(path: &std::path::Path, rows: usize, seed: u64) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = CsvWriter::create(path, CsvOptions::default()).expect("create log");
    let paths = ["/", "/search", "/cart", "/checkout", "/api/items", "/login"];
    let methods = ["GET", "GET", "GET", "POST"]; // GET-heavy
    let base = Date::parse("2024-01-01").expect("valid date");
    for i in 0..rows {
        let day = base.add_days((i / (rows / 30 + 1)) as i32);
        let status = match rng.gen_range(0..100) {
            0..=84 => 200,
            85..=92 => 304,
            93..=96 => 404,
            97..=98 => 301,
            _ => 500,
        };
        let fields = [
            day.to_string(),
            format!("10.0.{}.{}", rng.gen_range(0..256), rng.gen_range(0..256)),
            methods[rng.gen_range(0..methods.len())].to_string(),
            paths[rng.gen_range(0..paths.len())].to_string(),
            status.to_string(),
            rng.gen_range(40..250_000).to_string(), // bytes
            format!("{:.3}", rng.gen_range(0.2..900.0) / 1000.0), // seconds
        ];
        w.write_fields(&fields).expect("write row");
    }
    w.finish().expect("flush");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("nodb-logs")?;
    let path = dir.file("access.log.csv");
    print!("generating {ROWS} log lines ... ");
    write_log(&path, ROWS, 42)?;
    println!("done ({} MB)", std::fs::metadata(&path)?.len() / 1_000_000);

    let schema = Schema::parse(
        "day date, client text, method text, path text, status int, bytes bigint, \
         latency double",
    )?;
    let mut db = NoDb::new(NoDbConfig::postgres_raw())?;
    db.register_csv(
        "log",
        &path,
        schema,
        CsvOptions::default(),
        AccessMode::InSitu,
    )?;

    // Exploration session: each query narrows in on a problem.
    let session = [
        ("errors per day", "select day, count(*) as errors from log where status = 500 group by day order by day limit 5"),
        ("slowest endpoints", "select path, avg(latency) as avg_s, max(latency) as max_s from log group by path order by avg_s desc"),
        ("error bandwidth", "select sum(bytes) from log where status = 500"),
        ("checkout health", "select status, count(*) from log where path = '/checkout' group by status order by status"),
    ];
    for (label, sql) in session {
        let t = Instant::now();
        let r = db.query(sql)?;
        println!(
            "\n== {label} ({:.0} ms, {} rows)",
            t.elapsed().as_secs_f64() * 1e3,
            r.rows.len()
        );
        for row in r.rows.iter().take(5) {
            println!("   {row}");
        }
    }

    // The log keeps growing — append and query again, no re-registration.
    println!("\nappending 20k fresh lines ...");
    {
        let mut w = CsvWriter::append(&path, CsvOptions::default())?;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            w.write_fields(&[
                "2024-02-01".to_string(),
                "10.9.9.9".to_string(),
                "GET".to_string(),
                "/flash-sale".to_string(),
                "500".to_string(),
                rng.gen_range(40..1000).to_string(),
                "2.500".to_string(),
            ])?;
        }
        w.finish()?;
    }
    let t = Instant::now();
    let r = db.query(
        "select path, count(*) as errors from log where status = 500 and day = date '2024-02-01' group by path",
    )?;
    println!(
        "fresh-data query ({:.0} ms): {}",
        t.elapsed().as_secs_f64() * 1e3,
        r.rows
            .first()
            .map(|r| r.to_string())
            .unwrap_or_else(|| "no rows".into())
    );

    let m = db.metrics("log")?;
    println!(
        "\nsession work: {} scans, {:.1} MB tokenized, {} values converted, {} served from cache",
        m.scans,
        m.bytes_tokenized as f64 / 1e6,
        m.fields_parsed,
        m.fields_from_cache
    );
    println!("(a conventional DBMS would have parsed and loaded every byte before query #1)");
    Ok(())
}
