//! Physical planning: lower a [`LogicalPlan`] onto leaf scans supplied by
//! a [`TableProvider`].

use nodb_common::{NoDbError, Result, Value};
use nodb_sql::expr::AggExpr;
use nodb_sql::{AggStrategy, BoundExpr, LogicalPlan};

use crate::ops::{
    BoxOp, DistinctOp, FilterOp, HashAggOp, HashJoinOp, LimitOp, PlainAggOp, ProjectOp, SortAggOp,
    SortOp,
};

/// Supplies leaf scans. Implemented by the in-situ engine (PostgresRaw
/// scan), the external-files straw-man and the conventional heap-file
/// engine — the rest of the operator tree is identical across all three.
///
/// Providers must be `Send + Sync`: the engine serves concurrent queries
/// from multiple threads against one catalog, so `scan` is called with a
/// shared reference from any thread.
pub trait TableProvider: Send + Sync {
    /// Open a scan producing the `projection` columns (table ordinals, in
    /// the given order) with `filters` (bound against the projection
    /// layout) applied.
    ///
    /// Providers *must* apply the filters (the in-situ scan exploits them
    /// for selective parsing); they may also use them for pruning.
    fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp>;
}

/// Resolves table names to providers.
pub trait ExecCatalog {
    /// Provider for `table`.
    fn provider(&self, table: &str) -> Result<&dyn TableProvider>;

    /// Rows per batch for the vectorized execution path (0 = classic
    /// row-at-a-time). Blocking operators that drain their own input
    /// (the aggregations) are built with this batch size; streaming
    /// operators follow whatever pull style their consumer uses.
    fn batch_rows(&self) -> usize {
        0
    }
}

/// Build an executable operator tree.
pub fn build_plan(plan: &LogicalPlan, catalog: &dyn ExecCatalog) -> Result<BoxOp> {
    build_plan_with_params(plan, catalog, &[])
}

/// Build an executable operator tree, substituting parameter
/// placeholders with `params` while lowering — the zero-copy execute
/// path of a prepared statement (no intermediate plan clone). With an
/// empty `params` slice expressions are cloned verbatim, which is plain
/// [`build_plan`].
pub fn build_plan_with_params(
    plan: &LogicalPlan,
    catalog: &dyn ExecCatalog,
    params: &[Value],
) -> Result<BoxOp> {
    let sub = |e: &BoundExpr| -> BoundExpr {
        if params.is_empty() {
            e.clone()
        } else {
            e.substitute_params(params)
        }
    };
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            ..
        } => {
            if params.is_empty() {
                catalog.provider(table)?.scan(projection, filters)
            } else {
                let filters: Vec<BoundExpr> = filters.iter().map(sub).collect();
                catalog.provider(table)?.scan(projection, &filters)
            }
        }
        LogicalPlan::Filter { input, predicate } => Ok(Box::new(FilterOp::new(
            build_plan_with_params(input, catalog, params)?,
            sub(predicate),
        ))),
        LogicalPlan::Join {
            left,
            right,
            on,
            residual,
            kind,
            ..
        } => Ok(Box::new(HashJoinOp::new(
            build_plan_with_params(left, catalog, params)?,
            build_plan_with_params(right, catalog, params)?,
            on.clone(),
            residual.as_ref().map(sub),
            *kind,
        ))),
        LogicalPlan::Aggregate {
            input,
            group,
            aggs,
            strategy,
            ..
        } => {
            let child = build_plan_with_params(input, catalog, params)?;
            let aggs: Vec<AggExpr> = aggs
                .iter()
                .map(|a| AggExpr {
                    func: a.func,
                    arg: a.arg.as_ref().map(sub),
                })
                .collect();
            let batch = catalog.batch_rows();
            Ok(match strategy {
                AggStrategy::Plain => {
                    if !group.is_empty() {
                        return Err(NoDbError::internal("plain aggregation with group keys"));
                    }
                    Box::new(PlainAggOp::new(child, aggs).batched(batch))
                }
                AggStrategy::Hash => {
                    Box::new(HashAggOp::new(child, group.clone(), aggs).batched(batch))
                }
                AggStrategy::Sort => {
                    Box::new(SortAggOp::new(child, group.clone(), aggs).batched(batch))
                }
            })
        }
        LogicalPlan::Project { input, exprs, .. } => Ok(Box::new(ProjectOp::new(
            build_plan_with_params(input, catalog, params)?,
            exprs.iter().map(sub).collect(),
        ))),
        LogicalPlan::Sort { input, keys } => Ok(Box::new(SortOp::new(
            build_plan_with_params(input, catalog, params)?,
            keys.clone(),
        ))),
        LogicalPlan::Limit { input, n } => Ok(Box::new(LimitOp::new(
            build_plan_with_params(input, catalog, params)?,
            *n,
        ))),
        LogicalPlan::Distinct { input } => Ok(Box::new(DistinctOp::new(build_plan_with_params(
            input, catalog, params,
        )?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::RowsOp;
    use crate::run_to_vec;
    use nodb_common::Schema;
    use nodb_common::{Row, Value};
    use nodb_sql::binder::{CatalogView, PlannerOptions};
    use nodb_sql::plan_query;

    /// A provider serving a fixed in-memory table, applying projection
    /// and filters like a real scan would.
    struct MemTable {
        schema: Schema,
        rows: Vec<Row>,
    }

    impl TableProvider for MemTable {
        fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp> {
            let mut out = Vec::new();
            'rows: for r in &self.rows {
                let projected = Row(projection.iter().map(|&i| r.get(i).clone()).collect());
                for f in filters {
                    if !crate::eval_predicate(f, &projected)? {
                        continue 'rows;
                    }
                }
                out.push(projected);
            }
            Ok(Box::new(RowsOp::new(out)))
        }
    }

    struct MemCatalog {
        tables: Vec<(String, MemTable)>,
    }

    impl ExecCatalog for MemCatalog {
        fn provider(&self, table: &str) -> Result<&dyn TableProvider> {
            self.tables
                .iter()
                .find(|(n, _)| n == table)
                .map(|(_, t)| t as &dyn TableProvider)
                .ok_or_else(|| NoDbError::catalog(format!("no provider for `{table}`")))
        }
    }

    impl CatalogView for MemCatalog {
        fn schema_of(&self, table: &str) -> Result<Schema> {
            self.tables
                .iter()
                .find(|(n, _)| n == table)
                .map(|(_, t)| t.schema.clone())
                .ok_or_else(|| NoDbError::catalog(format!("unknown table `{table}`")))
        }
        fn stats_of(&self, _table: &str) -> Option<nodb_stats::TableStats> {
            None
        }
    }

    fn catalog() -> MemCatalog {
        let orders = MemTable {
            schema: Schema::parse("o_id int, o_cust int, o_total double").unwrap(),
            rows: vec![
                Row(vec![
                    Value::Int32(1),
                    Value::Int32(10),
                    Value::Float64(100.0),
                ]),
                Row(vec![
                    Value::Int32(2),
                    Value::Int32(20),
                    Value::Float64(200.0),
                ]),
                Row(vec![
                    Value::Int32(3),
                    Value::Int32(10),
                    Value::Float64(50.0),
                ]),
            ],
        };
        let cust = MemTable {
            schema: Schema::parse("c_id int, c_name text").unwrap(),
            rows: vec![
                Row(vec![Value::Int32(10), Value::Text("alice".into())]),
                Row(vec![Value::Int32(20), Value::Text("bob".into())]),
            ],
        };
        MemCatalog {
            tables: vec![("orders".into(), orders), ("customer".into(), cust)],
        }
    }

    fn run(sql: &str) -> Vec<Row> {
        let cat = catalog();
        let plan = plan_query(sql, &cat, &PlannerOptions::default()).unwrap();
        run_to_vec(build_plan(&plan, &cat).unwrap()).unwrap()
    }

    #[test]
    fn end_to_end_select_filter() {
        let rows = run("select o_id from orders where o_total > 60 order by o_id");
        assert_eq!(
            rows,
            vec![Row(vec![Value::Int32(1)]), Row(vec![Value::Int32(2)])]
        );
    }

    #[test]
    fn end_to_end_join_group() {
        let rows = run("select c_name, sum(o_total) total from orders, customer \
             where o_cust = c_id group by c_name order by total desc");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Text("bob".into()));
        assert_eq!(rows[0].get(1), &Value::Float64(200.0));
        assert_eq!(rows[1].get(1), &Value::Float64(150.0));
    }

    #[test]
    fn end_to_end_exists() {
        let rows = run("select c_name from customer where exists \
             (select * from orders where o_cust = c_id and o_total < 60) \
             order by c_name");
        assert_eq!(rows, vec![Row(vec![Value::Text("alice".into())])]);
    }

    #[test]
    fn end_to_end_plain_agg_expression() {
        let rows = run("select 100.0 * sum(o_total) / count(*) from orders");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Float64(100.0 * 350.0 / 3.0));
    }
}
