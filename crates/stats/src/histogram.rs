//! Equi-width histograms over numeric/date attributes.

/// An equi-width histogram over the numeric projection of a column
/// (integers and floats as themselves, dates as day numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build from sample values with `nbuckets` buckets.
    pub fn build(values: &[f64], nbuckets: usize) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return None;
        }
        let nbuckets = nbuckets.max(1);
        let mut buckets = vec![0u64; nbuckets];
        let width = (max - min) / nbuckets as f64;
        let mut total = 0u64;
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            let b = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(nbuckets - 1)
            };
            buckets[b] += 1;
            total += 1;
        }
        Some(Histogram {
            min,
            max,
            buckets,
            total,
        })
    }

    /// Estimated fraction of values `< x` (linear interpolation within a
    /// bucket).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return 1.0;
        }
        let width = (self.max - self.min) / self.buckets.len() as f64;
        if width == 0.0 {
            // Degenerate: all values equal.
            return if x > self.min { 1.0 } else { 0.0 };
        }
        let pos = (x - self.min) / width;
        let idx = (pos as usize).min(self.buckets.len() - 1);
        let frac_in_bucket = pos - idx as f64;
        let below: u64 = self.buckets[..idx].iter().sum();
        let partial = self.buckets[idx] as f64 * frac_in_bucket;
        (below as f64 + partial) / self.total as f64
    }

    /// Estimated fraction inside `[low, high)` with open/closed bounds
    /// approximated continuously.
    pub fn fraction_between(&self, low: Option<f64>, high: Option<f64>) -> f64 {
        let lo = low.map_or(0.0, |l| self.fraction_below(l));
        let hi = high.map_or(1.0, |h| self.fraction_below(h));
        (hi - lo).clamp(0.0, 1.0)
    }

    /// Smallest sampled value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sampled value.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_data_gives_linear_cdf() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 64).unwrap();
        for q in [0.1, 0.25, 0.5, 0.9] {
            let est = h.fraction_below(q * 10_000.0);
            assert!((est - q).abs() < 0.03, "q={q} est={est}");
        }
        assert_eq!(h.fraction_below(-5.0), 0.0);
        assert_eq!(h.fraction_below(1e9), 1.0);
    }

    #[test]
    fn between_combines_bounds() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 32).unwrap();
        let f = h.fraction_between(Some(250.0), Some(750.0));
        assert!((f - 0.5).abs() < 0.05);
        assert!((h.fraction_between(None, Some(100.0)) - 0.1).abs() < 0.05);
    }

    #[test]
    fn degenerate_single_value() {
        let h = Histogram::build(&[5.0, 5.0, 5.0], 8).unwrap();
        assert_eq!(h.fraction_below(5.0), 0.0);
        assert_eq!(h.fraction_below(5.1), 1.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(Histogram::build(&[], 8).is_none());
        assert!(Histogram::build(&[f64::NAN], 8).is_none());
    }
}
