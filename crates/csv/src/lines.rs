//! File access paths for the in-situ scan.
//!
//! Three access patterns exist in this PostgresRaw reproduction:
//!
//! * **Sequential tokenization** of every line — the first query on a file,
//!   or any region the positional map does not cover. [`LineReader`] serves
//!   this with a reused line buffer (one allocation amortized over the
//!   whole file).
//! * **Chunked parallel tokenization** — a cold scan splits the file into
//!   line-aligned byte ranges ([`split_line_aligned`]) and hands each to a
//!   worker thread, which reads it with a bounded [`LineReader`]
//!   ([`LineReader::open_range`]). Every byte of the region belongs to
//!   exactly one chunk, and no line straddles a chunk boundary.
//! * **Position-driven access** — the map knows where tuples/attributes
//!   live, and the scan touches only those byte ranges, in increasing file
//!   order. [`SlidingWindow`] serves monotonically-ordered range reads from
//!   a single buffered window so that the underlying I/O stays sequential.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use nodb_common::Result;

/// Default I/O buffer: large enough to make syscall overhead irrelevant,
/// small enough to stay cache-friendly.
pub const DEFAULT_BUF: usize = 1 << 20;

/// A half-open byte range `[start, end)` of a file, aligned so that
/// `start` is a line start and `end` is one past a line end (or the file
/// end). Produced by [`split_line_aligned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte of the range (a line start).
    pub start: u64,
    /// One past the last byte (one past a `\n`, or the file length).
    pub end: u64,
}

impl ByteRange {
    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Split the file region `[start, end)` into at most `chunks` line-aligned
/// byte ranges of roughly equal size.
///
/// `start` must itself be a line start. Internal boundaries are moved
/// forward to the byte just past the next `\n`, so every line falls into
/// exactly one chunk and the chunks cover every byte of the region exactly
/// once (a trailing line without a final newline goes to the last chunk).
/// Fewer than `chunks` ranges are returned when lines are too long or the
/// region is too small to split further; an empty region yields no ranges.
pub fn split_line_aligned(
    path: &Path,
    start: u64,
    end: u64,
    chunks: usize,
) -> Result<Vec<ByteRange>> {
    if end <= start {
        return Ok(Vec::new());
    }
    let chunks = chunks.max(1) as u64;
    let len = end - start;
    let target = len.div_ceil(chunks).max(1);
    let mut file = File::open(path)?;
    let mut ranges = Vec::with_capacity(chunks as usize);
    let mut cur = start;
    while cur < end {
        let goal = (cur + target).min(end);
        let boundary = if goal >= end {
            end
        } else {
            next_line_start(&mut file, goal, end)?
        };
        ranges.push(ByteRange {
            start: cur,
            end: boundary,
        });
        cur = boundary;
    }
    Ok(ranges)
}

/// Find the start of the first line at or after `from`: the byte just past
/// the next `\n` at or after `from - 1`... precisely, scanning from `from`
/// for a `\n` and returning the position after it (clamped to `end`).
fn next_line_start(file: &mut File, from: u64, end: u64) -> std::io::Result<u64> {
    file.seek(SeekFrom::Start(from))?;
    let mut buf = [0u8; 8192];
    let mut pos = from;
    while pos < end {
        let want = buf.len().min((end - pos) as usize);
        let n = file.read(&mut buf[..want])?;
        if n == 0 {
            return Ok(end);
        }
        if let Some(i) = buf[..n].iter().position(|&b| b == b'\n') {
            return Ok((pos + i as u64 + 1).min(end));
        }
        pos += n as u64;
    }
    Ok(end)
}

/// Sequential line reader with explicit byte offsets.
pub struct LineReader {
    inner: BufReader<File>,
    /// Byte offset of the *next* line to be returned.
    offset: u64,
    /// Reading stops once `offset` reaches this bound (`u64::MAX` for
    /// whole-file readers).
    end: u64,
}

impl LineReader {
    /// Open a file for sequential line reading.
    pub fn open(path: &Path) -> Result<LineReader> {
        Ok(LineReader {
            inner: BufReader::with_capacity(DEFAULT_BUF, File::open(path)?),
            offset: 0,
            end: u64::MAX,
        })
    }

    /// Open and skip to `offset` (e.g. resume after a header or an append
    /// high-water mark). `offset` must be a line start.
    pub fn open_at(path: &Path, offset: u64) -> Result<LineReader> {
        let mut f = File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        Ok(LineReader {
            inner: BufReader::with_capacity(DEFAULT_BUF, f),
            offset,
            end: u64::MAX,
        })
    }

    /// Open a reader bounded to the line-aligned `range` (one chunk of a
    /// parallel scan): lines are returned until `range.end` is reached.
    pub fn open_range(path: &Path, range: ByteRange) -> Result<LineReader> {
        let mut r = Self::open_at(path, range.start)?;
        r.end = range.end;
        Ok(r)
    }

    /// Byte offset where the *next* line starts (equivalently: one past
    /// the end of the last line returned, including its newline bytes).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Read the next line into `buf` (cleared first; newline stripped).
    ///
    /// Returns the byte offset of the line start, or `None` at EOF.
    /// A final line without a trailing newline is returned normally.
    pub fn next_line(&mut self, buf: &mut Vec<u8>) -> Result<Option<u64>> {
        buf.clear();
        let start = self.offset;
        if start >= self.end {
            return Ok(None);
        }
        let n = read_until(&mut self.inner, b'\n', buf)?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some(start))
    }
}

fn read_until(r: &mut BufReader<File>, byte: u8, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    use std::io::BufRead;
    r.read_until(byte, buf)
}

/// Buffered random access for byte ranges requested in non-decreasing
/// start order.
///
/// The positional map turns a scan into "jump to these positions"; ranges
/// arrive sorted because tuples are processed in file order, so a single
/// forward-moving window suffices and the disk never seeks backwards.
pub struct SlidingWindow {
    file: File,
    file_len: u64,
    buf: Vec<u8>,
    /// File offset of `buf[0]`.
    buf_start: u64,
    /// Valid bytes in `buf`.
    buf_len: usize,
    min_read: usize,
}

impl SlidingWindow {
    /// Open a file for windowed access.
    pub fn open(path: &Path) -> Result<SlidingWindow> {
        Self::with_capacity(path, DEFAULT_BUF)
    }

    /// Open with a specific minimum read size.
    pub fn with_capacity(path: &Path, min_read: usize) -> Result<SlidingWindow> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        Ok(SlidingWindow {
            file,
            file_len,
            buf: Vec::new(),
            buf_start: 0,
            buf_len: 0,
            min_read: min_read.max(4096),
        })
    }

    /// Total file length in bytes.
    pub fn len(&self) -> u64 {
        self.file_len
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file_len == 0
    }

    /// Bytes `[start, start + len)`, clamped to the file end.
    ///
    /// `start` must be ≥ the `start` of the previous call (monotonic
    /// access); violating this is a logic error that returns an internal
    /// error rather than corrupting the window.
    pub fn slice(&mut self, start: u64, len: usize) -> Result<&[u8]> {
        if start < self.buf_start {
            return Err(nodb_common::NoDbError::internal(format!(
                "SlidingWindow accessed backwards: {start} < {}",
                self.buf_start
            )));
        }
        let len = len.min((self.file_len.saturating_sub(start)) as usize);
        let end = start + len as u64;
        if end > self.buf_start + self.buf_len as u64 {
            self.refill(start, len)?;
        }
        let rel = (start - self.buf_start) as usize;
        Ok(&self.buf[rel..rel + len])
    }

    /// The rest of the line starting at `start`: bytes up to (not
    /// including) the next `\n`, or end of file.
    pub fn line_at(&mut self, start: u64) -> Result<&[u8]> {
        // Probe in growing windows until a newline is found.
        let mut probe = 256usize;
        loop {
            let max = (self.file_len - start) as usize;
            let want = probe.min(max);
            // Find newline inside the probed slice without holding the
            // borrow across the loop iteration.
            let pos = {
                let s = self.slice(start, want)?;
                s.iter().position(|&b| b == b'\n')
            };
            match pos {
                Some(p) => {
                    let mut end = p;
                    let s = self.slice(start, want)?;
                    if end > 0 && s[end - 1] == b'\r' {
                        end -= 1;
                    }
                    return self.slice(start, end);
                }
                None if want == max => return self.slice(start, max),
                None => probe *= 4,
            }
        }
    }

    fn refill(&mut self, start: u64, len: usize) -> Result<()> {
        let read_len = len.max(self.min_read);
        let read_len = read_len.min((self.file_len - start) as usize);
        // Keep any overlapping tail? Simpler: re-read from `start`.
        self.buf.resize(read_len, 0);
        self.file.seek(SeekFrom::Start(start))?;
        let mut done = 0;
        while done < read_len {
            let n = self.file.read(&mut self.buf[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        self.buf.truncate(done);
        self.buf_start = start;
        self.buf_len = done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    fn write_file(lines: &[&str]) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("data.csv");
        std::fs::write(&p, lines.join("\n")).unwrap();
        (td, p)
    }

    #[test]
    fn line_reader_tracks_offsets() {
        let (_td, p) = write_file(&["abc", "de", "", "fgh"]);
        let mut r = LineReader::open(&p).unwrap();
        let mut buf = Vec::new();
        let mut got = Vec::new();
        while let Some(off) = r.next_line(&mut buf).unwrap() {
            got.push((off, String::from_utf8(buf.clone()).unwrap()));
        }
        assert_eq!(
            got,
            vec![
                (0, "abc".to_string()),
                (4, "de".to_string()),
                (7, "".to_string()),
                (8, "fgh".to_string()),
            ]
        );
    }

    #[test]
    fn line_reader_handles_trailing_newline_and_crlf() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        std::fs::write(&p, "a\r\nb\n").unwrap();
        let mut r = LineReader::open(&p).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(0));
        assert_eq!(buf, b"a");
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(3));
        assert_eq!(buf, b"b");
        assert_eq!(r.next_line(&mut buf).unwrap(), None);
    }

    #[test]
    fn open_at_resumes_mid_file() {
        let (_td, p) = write_file(&["abc", "de"]);
        let mut r = LineReader::open_at(&p, 4).unwrap();
        let mut buf = Vec::new();
        assert_eq!(r.next_line(&mut buf).unwrap(), Some(4));
        assert_eq!(buf, b"de");
    }

    #[test]
    fn sliding_window_serves_monotonic_ranges() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 4096).unwrap();
        assert_eq!(w.slice(0, 3).unwrap(), b"012");
        assert_eq!(w.slice(2, 4).unwrap(), b"2345");
        assert_eq!(w.slice(10, 5).unwrap(), b"abcde");
        // Clamped at EOF.
        assert_eq!(w.slice(18, 10).unwrap(), b"ij");
        // Backwards access is rejected.
        assert!(w.slice(0, 1).is_err() || w.buf_start == 0);
    }

    #[test]
    fn sliding_window_small_buffer_refills() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 1).unwrap();
        // min_read clamps to 4096 internally, so force tiny by direct len.
        assert_eq!(w.slice(0, 2).unwrap(), b"01");
        assert_eq!(w.slice(15, 5).unwrap(), b"fghij");
    }

    #[test]
    fn line_at_stops_at_newline() {
        let (_td, p) = write_file(&["first,line", "second"]);
        let mut w = SlidingWindow::open(&p).unwrap();
        assert_eq!(w.line_at(0).unwrap(), b"first,line");
        assert_eq!(w.line_at(11).unwrap(), b"second");
    }

    /// Read all lines of `range` through a bounded reader.
    fn range_lines(p: &std::path::Path, range: ByteRange) -> Vec<Vec<u8>> {
        let mut r = LineReader::open_range(p, range).unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while r.next_line(&mut buf).unwrap().is_some() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn split_covers_region_exactly_once() {
        let (_td, p) = write_file(&["aaaa", "bb", "cccccc", "d", "ee", "ffff"]);
        let len = std::fs::metadata(&p).unwrap().len();
        for chunks in 1..=8 {
            let ranges = split_line_aligned(&p, 0, len, chunks).unwrap();
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= chunks.max(1));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous, non-overlapping");
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn split_boundaries_are_line_aligned() {
        let (_td, p) = write_file(&["aaaa", "bb", "cccccc", "d", "ee", "ffff"]);
        let data = std::fs::read(&p).unwrap();
        let ranges = split_line_aligned(&p, 0, data.len() as u64, 3).unwrap();
        for r in &ranges[1..] {
            assert_eq!(
                data[r.start as usize - 1],
                b'\n',
                "chunk start {} must follow a newline",
                r.start
            );
        }
    }

    #[test]
    fn split_of_empty_region_is_empty() {
        let (_td, p) = write_file(&["abc"]);
        assert!(split_line_aligned(&p, 3, 3, 4).unwrap().is_empty());
        assert!(split_line_aligned(&p, 5, 3, 4).unwrap().is_empty());
    }

    #[test]
    fn split_single_long_line_yields_one_chunk() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        std::fs::write(&p, "x".repeat(10_000)).unwrap();
        let ranges = split_line_aligned(&p, 0, 10_000, 8).unwrap();
        assert_eq!(
            ranges,
            vec![ByteRange {
                start: 0,
                end: 10_000
            }]
        );
    }

    #[test]
    fn open_range_stops_at_chunk_end() {
        let (_td, p) = write_file(&["abc", "de", "fgh"]);
        // "abc\nde\nfgh" — chunk covering only the first two lines.
        let lines = range_lines(&p, ByteRange { start: 0, end: 7 });
        assert_eq!(lines, vec![b"abc".to_vec(), b"de".to_vec()]);
        let rest = range_lines(&p, ByteRange { start: 7, end: 10 });
        assert_eq!(rest, vec![b"fgh".to_vec()]);
    }

    mod chunking_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Line-aligned chunking over arbitrary CSV-ish bodies covers
            /// every byte exactly once and never splits a line: reading
            /// the chunks in order yields exactly the lines of the whole
            /// file, including trailing-newline / no-trailing-newline,
            /// empty-line and CRLF edge cases.
            #[test]
            fn chunking_partitions_lines_exactly(
                lines in proptest::collection::vec("[a-z,]{0,12}", 0..40),
                trailing_newline in any::<bool>(),
                crlf in any::<bool>(),
                chunks in 1usize..9,
            ) {
                let sep = if crlf { "\r\n" } else { "\n" };
                let mut body = lines.join(sep);
                if trailing_newline && !body.is_empty() {
                    body.push_str(sep);
                }
                let td = TempDir::new("nodb-csv-prop").unwrap();
                let p = td.file("d.csv");
                std::fs::write(&p, &body).unwrap();
                let len = body.len() as u64;

                let ranges = split_line_aligned(&p, 0, len, chunks).unwrap();

                // Exact coverage: contiguous, non-empty, spanning [0, len).
                let mut covered = 0u64;
                for r in &ranges {
                    prop_assert_eq!(r.start, covered);
                    prop_assert!(r.end > r.start);
                    covered = r.end;
                }
                prop_assert_eq!(covered, len);
                // Boundaries are line-aligned.
                let bytes = body.as_bytes();
                for r in ranges.iter().skip(1) {
                    prop_assert_eq!(bytes[r.start as usize - 1], b'\n');
                }
                // Reading the chunks in order reproduces the file's lines.
                let whole = {
                    let mut r = LineReader::open(&p).unwrap();
                    let mut buf = Vec::new();
                    let mut out = Vec::new();
                    while r.next_line(&mut buf).unwrap().is_some() {
                        out.push(buf.clone());
                    }
                    out
                };
                let mut chunked = Vec::new();
                for r in &ranges {
                    chunked.extend(range_lines(&p, *r));
                }
                prop_assert_eq!(chunked, whole);
            }
        }
    }

    #[test]
    fn line_at_handles_crlf_and_long_lines() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        let long = "x".repeat(5000);
        std::fs::write(&p, format!("{long}\r\ntail")).unwrap();
        let mut w = SlidingWindow::open(&p).unwrap();
        assert_eq!(w.line_at(0).unwrap().len(), 5000);
    }
}
