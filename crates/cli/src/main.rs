//! `nodb` — an interactive SQL shell over raw data files.
//!
//! ```text
//! $ nodb
//! nodb> \register events ./events.csv "day date, user text, action text, ms int"
//! nodb> select action, count(*) from events group by action order by count desc;
//! nodb> \metrics events
//! nodb> \quit
//! ```
//!
//! No loading step, ever: files are queried in place, and the engine's
//! positional map / cache / statistics build up behind your session.

use std::io::{BufRead, Write};
use std::path::Path;

use nodb_common::{ByteSize, IoBackend, Schema};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_fits::FitsProvider;
use nodb_server::{collect_stats, NodbClient, StatsPayload};

mod commands;

use commands::{parse_line, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Engine knobs from flags (the NODB_IO_BACKEND environment variable
    // seeds the default; --io-backend wins).
    let mut config = NoDbConfig::postgres_raw();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return;
            }
            "--io-backend" => {
                i += 1;
                match args.get(i).map(|s| IoBackend::parse(s)) {
                    Some(Ok(b)) => config.io_backend = b,
                    _ => {
                        eprintln!("--io-backend needs one of: auto, read, mmap");
                        std::process::exit(2);
                    }
                }
            }
            "--scan-threads" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => config.scan_threads = n,
                    None => {
                        eprintln!("--scan-threads needs a count (0 = one per core)");
                        std::process::exit(2);
                    }
                }
            }
            "--batch-rows" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) => config.batch_rows = n,
                    None => {
                        eprintln!("--batch-rows needs a row count (0 = row-at-a-time)");
                        std::process::exit(2);
                    }
                }
            }
            "--posmap-budget" => {
                i += 1;
                match args.get(i).map(|s| ByteSize::parse(s)) {
                    Some(Ok(b)) => config.posmap_budget = Some(b),
                    _ => {
                        eprintln!("--posmap-budget needs a byte size (e.g. 64MB, 1.5GB)");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-budget" => {
                i += 1;
                match args.get(i).map(|s| ByteSize::parse(s)) {
                    Some(Ok(b)) => config.cache_budget = Some(b),
                    _ => {
                        eprintln!("--cache-budget needs a byte size (e.g. 64MB, 1.5GB)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let io = config.effective_io_backend();
    let mut db = match NoDb::new(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to start engine: {e}");
            std::process::exit(1);
        }
    };

    println!("nodb — in-situ SQL over raw files (\\help for commands; io backend: {io})");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timing = false;
    // `Some` while attached to a remote nodb-server via \connect; SQL
    // then streams over the wire instead of the embedded engine.
    let mut remote: Option<NodbClient> = None;
    loop {
        print!("nodb> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Accumulate SQL until a terminating `;`; backslash-commands are
        // single-line.
        if !line.starts_with('\\') {
            buffer.push_str(line);
            buffer.push(' ');
            if !line.ends_with(';') {
                continue;
            }
        }
        let input = if line.starts_with('\\') {
            line.to_string()
        } else {
            std::mem::take(&mut buffer)
        };
        match parse_line(&input) {
            Ok(Command::Quit) => break,
            Ok(Command::Help) => print_help(),
            Ok(cmd) => {
                if let Err(e) = execute(&mut db, &mut remote, cmd, &mut timing) {
                    eprintln!("error: {e}");
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn execute(
    db: &mut NoDb,
    remote: &mut Option<NodbClient>,
    cmd: Command,
    timing: &mut bool,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Connect { target } => {
            let client = NodbClient::connect(&target)?;
            println!("connected to {} at {target}", client.server());
            if let Some(old) = remote.replace(client) {
                let _ = old.close();
            }
        }
        Command::Disconnect => match remote.take() {
            Some(client) => {
                client.close()?;
                println!("disconnected; SQL runs on the embedded engine again");
            }
            None => println!("not connected"),
        },
        Command::Sql { sql } if remote.is_some() => {
            // Remote mode: stream frames off the wire. Identical output
            // shape to the embedded path; the server's shared engine
            // does the scanning, so other clients' queries warm ours.
            let t = std::time::Instant::now();
            let client = remote.as_mut().expect("guarded by remote.is_some()");
            let stream = client.stream(&sql, &[])?;
            let names: Vec<&str> = stream
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            println!("{}", names.join(" | "));
            let mut n = 0usize;
            for row in stream {
                println!("{}", row?);
                n += 1;
            }
            println!("({n} rows)");
            if *timing {
                println!("Time: {:.3} ms", t.elapsed().as_secs_f64() * 1e3);
            }
        }
        Command::Register { .. } if remote.is_some() => {
            return Err("\\register is not available while connected to a server; \
                        register tables with nodb-server --register, or \\disconnect first"
                .into());
        }
        Command::Register {
            name,
            path,
            schema,
            delimiter,
        } => {
            let p = Path::new(&path);
            if path.ends_with(".fits") {
                let provider = FitsProvider::open(p, None, true)?;
                let schema = provider.table().schema()?;
                db.register_provider(&name, schema, Box::new(provider))?;
            } else if path.ends_with(".jsonl") || path.ends_with(".ndjson") {
                let schema = Schema::parse(&schema.ok_or("JSONL files need a schema string")?)?;
                db.register_jsonl(&name, p, schema, AccessMode::InSitu)?;
            } else {
                let schema = Schema::parse(&schema.ok_or("CSV files need a schema string")?)?;
                let opts = CsvOptions {
                    delimiter,
                    has_header: false,
                };
                db.register_csv(&name, p, schema, opts, AccessMode::InSitu)?;
            }
            println!("registered `{name}` -> {path}");
        }
        Command::Metrics { table } => {
            // While \connect'ed, read the *server's* engine over the
            // Stats frame — the embedded engine has done no work, and
            // printing its zeros for a remote table would be a lie.
            let p = fetch_stats(db, remote, &table)?;
            print_metrics(&p);
        }
        Command::Stats { table } => {
            let p = fetch_stats(db, remote, &table)?;
            print_metrics(&p);
            print_profile(&p);
        }
        Command::Explain { .. } if remote.is_some() => {
            return Err("\\explain is not available while connected to a server; \
                        \\disconnect to plan against the embedded engine"
                .into());
        }
        Command::Explain { sql } => {
            print!("{}", db.explain(&sql)?);
        }
        Command::Sql { sql } => {
            // Stream from the cursor: rows print as the scan produces
            // them, and nothing holds the full result set in memory —
            // a LIMIT (or a closed pipe) stops the raw-file scan early.
            let t = std::time::Instant::now();
            let mut cursor = db.query_stream(&sql)?;
            println!("{}", cursor.columns().join(" | "));
            let mut n = 0usize;
            for row in cursor.by_ref() {
                println!("{}", row?);
                n += 1;
            }
            println!("({n} rows)");
            if *timing {
                println!("Time: {:.3} ms", t.elapsed().as_secs_f64() * 1e3);
            }
        }
        Command::Timing { setting } => {
            *timing = setting.unwrap_or(!*timing);
            println!("Timing is {}.", if *timing { "on" } else { "off" });
        }
        Command::Quit | Command::Help => {}
    }
    Ok(())
}

/// One observability snapshot for `table`, from wherever SQL currently
/// runs: the server's shared engine when `\connect`ed (over the Stats
/// frame), the embedded engine otherwise. Both paths produce the same
/// [`StatsPayload`], so `\metrics` / `\stats` render identically.
fn fetch_stats(
    db: &NoDb,
    remote: &mut Option<NodbClient>,
    table: &str,
) -> Result<StatsPayload, Box<dyn std::error::Error>> {
    match remote.as_mut() {
        Some(client) => Ok(client.table_stats(table)?),
        None => Ok(collect_stats(db, table)?),
    }
}

fn print_metrics(p: &StatsPayload) {
    println!(
        "scans={} rows_emitted={} tokenized={} parsed={} from_cache={} \
         via_map={} via_anchor={}",
        p.scans,
        p.rows_emitted,
        p.fields_tokenized,
        p.fields_parsed,
        p.fields_from_cache,
        p.fields_via_map,
        p.fields_via_anchor
    );
    println!(
        "posmap: {} pointers / {} bytes; cache: {} bytes ({:.1}% of budget); stats on {} attrs",
        p.posmap_pointers,
        p.posmap_bytes,
        p.cache_bytes,
        p.cache_utilization * 100.0,
        p.stats_attrs
    );
}

fn print_profile(p: &StatsPayload) {
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "phase: io {:.3} ms / {} bytes; tokenize {:.3} ms / {} bytes; \
         parse {:.3} ms / {} values",
        ms(p.io_ns),
        p.io_bytes,
        ms(p.tokenize_ns),
        p.tokenize_bytes,
        ms(p.parse_ns),
        p.parse_values
    );
    if p.heats.is_empty() {
        println!("workload: no column touches recorded");
    } else {
        let cols: Vec<String> = p
            .heats
            .iter()
            .map(|(attr, heat)| format!("#{attr}={heat}"))
            .collect();
        println!("workload heat (decayed touches): {}", cols.join(" "));
    }
}

fn print_help() {
    println!(
        "usage: nodb [--io-backend auto|read|mmap] [--scan-threads N] [--batch-rows N]\n\
         \x20          [--posmap-budget SIZE] [--cache-budget SIZE]\n\
         \n\
         --io-backend B                        raw-file I/O substrate (default: auto — mmap\n\
         \x20                                     where supported; NODB_IO_BACKEND overrides)\n\
         --scan-threads N                      cold-scan worker threads (0 = one per core)\n\
         --batch-rows N                        rows per vectorized batch (default 1024;\n\
         \x20                                     0 = row-at-a-time; NODB_BATCH_ROWS overrides)\n\
         --posmap-budget SIZE                  positional-map memory cap per table, e.g. 64MB\n\
         \x20                                     (default unbounded; NODB_POSMAP_BUDGET overrides)\n\
         --cache-budget SIZE                   parsed-value cache cap per table, e.g. 256MB\n\
         \x20                                     (default unbounded; NODB_CACHE_BUDGET overrides)\n\
         \n\
         \\register NAME PATH \"col type, ...\"   register a CSV file (in situ)\n\
         \\register NAME PATH.jsonl \"col type, ...\"  register a JSON Lines file (keys = column names)\n\
         \\register NAME PATH.fits              register a FITS binary table\n\
         \\sep NAME PATH '|' \"col type, ...\"    register with a delimiter\n\
         \\explain SELECT ...                   show the query plan\n\
         \\metrics NAME                         show scan work counters\n\
         \\stats NAME                           counters + phase timings + workload heat\n\
         \x20                                     (local, or the server's when \\connect'ed)\n\
         \\connect HOST:PORT | unix:PATH        attach to a running nodb-server; SQL runs there\n\
         \\disconnect                           detach and run SQL locally again\n\
         \\timing [on|off]                      toggle per-statement wall-clock reporting\n\
         \\help                                 this text\n\
         \\quit                                 exit\n\
         SELECT ... ;                          run SQL (terminate with ;)"
    );
}
