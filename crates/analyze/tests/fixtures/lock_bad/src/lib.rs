//! Seeded violations for the `lock-order` arm: `stats` (rank 3) is held
//! while `posmap` (rank 1) is acquired — a DAG inversion — and `cache`
//! is re-acquired while already held — a self-deadlock.

pub fn inverted(rt: &Runtime) -> u32 {
    let s = rt.stats.lock();
    let p = rt.posmap.read();
    *p + *s
}

pub fn reentrant(rt: &Runtime) -> u32 {
    let a = rt.cache.read();
    let b = rt.cache.read();
    *a + *b
}

pub fn fine(rt: &Runtime) -> u32 {
    let p = rt.posmap.read();
    let s = rt.stats.lock();
    *p + *s
}
