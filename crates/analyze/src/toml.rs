//! A minimal TOML-subset reader for the committed allowlist files.
//!
//! The build environment has no crates.io access, so the linter reads
//! its own allowlists with a hand-rolled parser covering exactly the
//! subset the tool emits: `[[array-of-tables]]` headers and
//! `key = "string"` pairs. Anything outside that subset is a loud error
//! — an allowlist that cannot be parsed must fail the run, never be
//! silently ignored.

use std::collections::BTreeMap;
use std::fmt;

/// One `[[section]]` entry: its keys and the line it starts on.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Section name (the `name` in `[[name]]`).
    pub section: String,
    /// 1-based line of the `[[…]]` header (for error messages).
    pub line: usize,
    /// `key = "value"` pairs in declaration order.
    pub fields: BTreeMap<String, String>,
}

impl Entry {
    /// Fetch a required field; a missing field is a format error.
    pub fn require(&self, key: &str) -> Result<&str, ParseError> {
        self.fields.get(key).map(|s| s.as_str()).ok_or(ParseError {
            line: self.line,
            msg: format!(
                "entry `[[{}]]` is missing required key `{key}`",
                self.section
            ),
        })
    }
}

/// Parse failure: line and message.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Parse the allowlist subset of TOML: blank lines, `#` comments,
/// `[[section]]` headers, and `key = "quoted string"` pairs (with
/// `\"` / `\\` escapes). Everything else is an error.
pub fn parse(input: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries: Vec<Entry> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            entries.push(Entry {
                section: name.trim().to_string(),
                line: lineno,
                fields: BTreeMap::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ParseError {
                line: lineno,
                msg: format!("expected `key = \"value\"` or `[[section]]`, got `{line}`"),
            });
        };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        if key.is_empty() || !key.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
            return Err(ParseError {
                line: lineno,
                msg: format!("invalid key `{key}`"),
            });
        }
        let Some(entry) = entries.last_mut() else {
            return Err(ParseError {
                line: lineno,
                msg: "key/value pair before any [[section]] header".into(),
            });
        };
        let unquoted = unquote(val).ok_or(ParseError {
            line: lineno,
            msg: format!("value for `{key}` must be a double-quoted string, got `{val}`"),
        })?;
        if entry.fields.insert(key.to_string(), unquoted).is_some() {
            return Err(ParseError {
                line: lineno,
                msg: format!("duplicate key `{key}` in one entry"),
            });
        }
    }
    Ok(entries)
}

fn unquote(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            // An unescaped interior quote means `v` wasn't one string.
            return None;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Quote a string for emission in the subset this module parses.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = "# header\n[[unsafe]]\nfile = \"a/b.rs\"\nhash = \"fnv64:12ab\"\n\n[[unsafe]]\nfile = \"c.rs\"\nhash = \"fnv64:34cd\"\n";
        let entries = parse(src).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].require("file").unwrap(), "a/b.rs");
        assert_eq!(entries[1].require("hash").unwrap(), "fnv64:34cd");
        assert!(entries[0].require("missing").is_err());
    }

    #[test]
    fn escapes() {
        let entries = parse("[[w]]\nkey = \"a \\\"b\\\" \\\\ c\"\n").unwrap();
        assert_eq!(entries[0].require("key").unwrap(), "a \"b\" \\ c");
        let q = quote("a \"b\" \\ c");
        assert_eq!(
            parse(&format!("[[w]]\nk = {q}\n")).unwrap()[0].fields["k"],
            "a \"b\" \\ c"
        );
    }

    #[test]
    fn malformed_is_loud() {
        assert!(parse("key = \"orphan\"\n").is_err());
        assert!(parse("[[w]]\nkey = unquoted\n").is_err());
        assert!(parse("[[w]]\nnot a pair\n").is_err());
        assert!(parse("[[w]]\nk = \"a\"\nk = \"b\"\n").is_err());
    }
}
