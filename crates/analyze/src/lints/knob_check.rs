//! Knob cross-check: every `NODB_*` string literal in the tree must be a
//! registered knob environment variable (`nodb_common::knob::all()`), so
//! an env var cannot be read (or documented, or set in CI) that the
//! registry — and therefore `validate_env` and `--help` — doesn't know
//! about. Conversely, every registered knob's env var and CLI flag must
//! be mentioned in the README.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{in_spans, test_spans};
use crate::report::Finding;
use crate::SourceFile;

/// Extract `NODB_…` tokens from one string literal.
fn nodb_vars(s: &str) -> Vec<String> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = s[from..].find("NODB_") {
        let start = from + pos;
        let mut end = start + "NODB_".len();
        while end < b.len()
            && (b[end].is_ascii_uppercase() || b[end].is_ascii_digit() || b[end] == b'_')
        {
            end += 1;
        }
        // Require at least one character after the prefix, and a
        // non-identifier boundary before it.
        let before_ok = start == 0 || !b[start - 1].is_ascii_alphanumeric();
        if end > start + "NODB_".len() && before_ok {
            out.push(s[start..end].trim_end_matches('_').to_string());
        }
        from = end.max(from + pos + 1);
    }
    out
}

/// Run the knob arm over the whole tree.
pub fn run(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    let valid: BTreeSet<&str> = cfg.knob_envs.iter().map(|s| s.as_str()).collect();
    for sf in files {
        let rel = sf.rel_str();
        if rel.starts_with("tests/") || rel.contains("/tests/") {
            continue; // integration tests may fabricate var names
        }
        let tests = test_spans(&sf.lexed.mask);
        for lit in &sf.lexed.strings {
            if in_spans(&tests, lit.line) {
                continue; // unit tests may fabricate var names
            }
            for var in nodb_vars(&lit.content) {
                if !valid.contains(var.as_str()) {
                    findings.push(Finding {
                        lint: "knob",
                        file: sf.rel.clone(),
                        line: lit.line,
                        message: format!(
                            "`{var}` is not a registered knob env var \
                             (nodb_common::knob::all()) — register it or waive it \
                             with a justification"
                        ),
                        waiver_key: Some(var),
                    });
                }
            }
        }
    }
    let readme_path = cfg.root.join(&cfg.readme);
    if !cfg.knob_docs.is_empty() {
        match std::fs::read_to_string(&readme_path) {
            Ok(readme) => {
                for (env, flag) in &cfg.knob_docs {
                    for (what, needle) in [("env var", env), ("flag", flag)] {
                        if !readme.contains(needle.as_str()) {
                            findings.push(Finding {
                                lint: "knob",
                                file: cfg.readme.clone(),
                                line: 0,
                                message: format!(
                                    "knob {what} `{needle}` is not mentioned in the README"
                                ),
                                waiver_key: Some(needle.clone()),
                            });
                        }
                    }
                }
            }
            Err(e) => findings.push(Finding {
                lint: "knob",
                file: cfg.readme.clone(),
                line: 0,
                message: format!("README unreadable for the knob doc check: {e}"),
                waiver_key: None,
            }),
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_vars_from_literals() {
        assert_eq!(
            nodb_vars("set NODB_IO_BACKEND=mmap"),
            vec!["NODB_IO_BACKEND"]
        );
        assert_eq!(nodb_vars("NODB_A and NODB_B_2"), vec!["NODB_A", "NODB_B_2"]);
        assert!(nodb_vars("bare NODB_ prefix").is_empty());
        assert!(nodb_vars("MYNODB_X").is_empty());
        assert_eq!(nodb_vars("NODB_X_=trailing"), vec!["NODB_X"]);
    }
}
