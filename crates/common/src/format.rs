//! The record-tokenizer abstraction behind format-generic in-situ scans.
//!
//! NoDB's adaptive machinery — the end-of-line index, the positional map,
//! the binary cache, line-aligned chunk splitting — is about *lines* and
//! *positions within lines*, not about commas. [`LineFormat`] captures the
//! three operations the scan actually needs from a concrete file format:
//!
//! 1. find the byte positions where attribute values start on a line
//!    ([`LineFormat::positions_upto`]),
//! 2. convert the value at a known position ([`LineFormat::parse_at`]),
//! 3. navigate from one known position to another attribute
//!    ([`LineFormat::advance`] — the paper's incremental parsing from a
//!    positional-map anchor, §4.2).
//!
//! `nodb-csv` implements it for character-delimited files and `nodb-json`
//! for JSON Lines; the scan operator in `nodb-core` is written against the
//! trait only, so one adaptive runtime serves every line-oriented format.
//!
//! # Null / missing-value semantics
//!
//! All formats funnel value conversion through
//! [`Value::parse_field`](crate::Value::parse_field), so type coercion is
//! defined once, here in `nodb-common`: empty raw content is SQL NULL, and
//! textual content is parsed according to the declared [`DataType`].
//! Formats whose records are keyed rather than ordered (JSON Lines) may
//! lack an attribute entirely; they report [`NO_POSITION`] for it, and
//! [`LineFormat::parse_at`] maps that to NULL. The positional map stores
//! `NO_POSITION` like any other offset, so "the attribute is absent on
//! this row" is itself positional knowledge that warm scans reuse.

use crate::error::Result;
use crate::types::DataType;
use crate::value::Value;

/// Sentinel start offset: the attribute has no value on this record (for
/// example a missing key in a JSON Lines object). [`LineFormat::parse_at`]
/// turns it into [`Value::Null`]; position collectors store it verbatim.
pub const NO_POSITION: u32 = u32::MAX;

/// Raw textual content of one field, for predicate fast paths that want
/// to look at bytes *without* paying [`Value::parse_field`] conversion
/// (the LIKE prefix/suffix paths of a pushed-down scan predicate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawField<'a> {
    /// The field is definitely SQL NULL (empty CSV field, missing JSON
    /// key, JSON `null`).
    Null,
    /// The field's text content, byte-exact with what
    /// [`Value::parse_field`] would see for a text column.
    Text(&'a [u8]),
    /// The format cannot expose the content as a plain slice (escaped
    /// JSON string, non-string JSON token, ...). Callers must fall back
    /// to [`LineFormat::parse_at`].
    Opaque,
}

/// A line-oriented raw-file format: how to locate and convert attribute
/// values on one record (a single line, newline already stripped).
///
/// Implementations must be cheap to share (`Send + Sync`): one format
/// value is consulted concurrently by every chunk worker of a parallel
/// scan and by every concurrent query on the table.
pub trait LineFormat: std::fmt::Debug + Send + Sync {
    /// Append the start offsets of the values of attributes `0..=upto` to
    /// `out`, returning how many were appended.
    ///
    /// Formats with *ordered* fields (CSV) may stop scanning early — the
    /// paper's selective tokenizing — and return fewer than `upto + 1`
    /// when the record is short; the scan reports that as a field-count
    /// parse error. Formats with *keyed* records (JSON Lines) append
    /// [`NO_POSITION`] for declared attributes absent from the record and
    /// return `upto + 1`, erroring only on malformed records. Errors
    /// carry byte offsets relative to the line start; the scan adds
    /// file/row/absolute-byte context.
    fn positions_upto(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize>;

    /// Convert the value starting at byte `start` of `line` into a
    /// [`Value`] of `dtype`. `start == NO_POSITION` yields
    /// [`Value::Null`]. The implementation finds the value's end itself
    /// (delimiter, token boundary, closing quote, ...).
    fn parse_at(&self, line: &[u8], start: u32, dtype: DataType) -> Result<Value>;

    /// Given the known start of attribute `from_idx`, locate the start of
    /// attribute `to_idx` on the same line — the positional-map anchor
    /// jump. Ordered formats scan just the bytes between the two fields
    /// (forwards or backwards); keyed formats may re-tokenize the record.
    fn advance(&self, line: &[u8], from_start: u32, from_idx: usize, to_idx: usize) -> Result<u32>;

    /// Extend a previous [`LineFormat::positions_upto`] result for the
    /// *same* line to cover attributes `0..=upto`, returning the total
    /// number of starts now in `out`. `out` must hold exactly what the
    /// earlier call appended (starting empty). Ordered formats resume
    /// scanning from the last known start; the default re-tokenizes from
    /// scratch. Pushed-down predicates use this to grow tokenization
    /// only for rows that survive the predicate.
    fn positions_extend(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize> {
        out.clear();
        self.positions_upto(line, upto, out)
    }

    /// The raw text content of the field starting at byte `start`, when
    /// the format can expose it as a plain slice (see [`RawField`]).
    /// The default is conservatively [`RawField::Opaque`] — always
    /// correct, never fast.
    fn raw_field<'a>(&self, line: &'a [u8], start: u32) -> RawField<'a> {
        let _ = (line, start);
        RawField::Opaque
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NoDbError;

    /// A toy fixed-width format (3 bytes per attribute) proving the trait
    /// is implementable outside the CSV/JSON crates.
    #[derive(Debug)]
    struct Fixed3;

    impl LineFormat for Fixed3 {
        fn positions_upto(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize> {
            let fields = line.len() / 3;
            let n = fields.min(upto + 1);
            out.extend((0..n).map(|i| (i * 3) as u32));
            Ok(n)
        }

        fn parse_at(&self, line: &[u8], start: u32, dtype: DataType) -> Result<Value> {
            if start == NO_POSITION {
                return Ok(Value::Null);
            }
            let s = start as usize;
            Value::parse_field(&line[s..s + 3], dtype)
        }

        fn advance(
            &self,
            _line: &[u8],
            from_start: u32,
            from_idx: usize,
            to_idx: usize,
        ) -> Result<u32> {
            let delta = 3 * (to_idx as i64 - from_idx as i64);
            u32::try_from(from_start as i64 + delta)
                .map_err(|_| NoDbError::parse("advance out of range"))
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let f: &dyn LineFormat = &Fixed3;
        let mut out = Vec::new();
        assert_eq!(f.positions_upto(b"001002003", 1, &mut out).unwrap(), 2);
        assert_eq!(out, vec![0, 3]);
        assert_eq!(
            f.parse_at(b"001002003", 3, DataType::Int32).unwrap(),
            Value::Int32(2)
        );
        assert_eq!(f.advance(b"001002003", 0, 0, 2).unwrap(), 6);
        assert_eq!(
            f.parse_at(b"", NO_POSITION, DataType::Text).unwrap(),
            Value::Null
        );
    }
}
