//! File access paths for the in-situ scan.
//!
//! Three access patterns exist in this PostgresRaw reproduction:
//!
//! * **Sequential tokenization** of every line — the first query on a file,
//!   or any region the positional map does not cover. [`LineReader`] serves
//!   this with a reused line buffer (one allocation amortized over the
//!   whole file).
//! * **Chunked parallel tokenization** — a cold scan splits the file into
//!   line-aligned byte ranges ([`split_line_aligned`]) and hands each to a
//!   worker thread, which reads it with a bounded [`LineReader`]
//!   ([`LineReader::open_range`] or, when sharing one open file,
//!   [`LineReader::from_source`]). Every byte of the region belongs to
//!   exactly one chunk, and no line straddles a chunk boundary.
//! * **Position-driven access** — the map knows where tuples/attributes
//!   live, and the scan touches only those byte ranges, in increasing file
//!   order. [`SlidingWindow`] serves monotonically-ordered range reads from
//!   a single buffered window so that the underlying I/O stays sequential.
//!
//! All three are built on the pluggable I/O substrate
//! ([`nodb_common::ByteSource`]): with the `Read` backend they buffer
//! positioned reads exactly as before; with the `Mmap` backend line
//! scanning and window slicing operate directly on the mapping — no read
//! syscalls, no intermediate copies. Offsets, line contents and chunk
//! boundaries are bit-identical across backends; the plain-`Path`
//! constructors keep the buffered-`read` behaviour, and `*_with` variants
//! accept an [`IoBackend`].

use std::path::Path;
use std::sync::Arc;

use nodb_common::{swar, ByteSource, IoBackend, Result};

/// Default I/O buffer: large enough to make syscall overhead irrelevant,
/// small enough to stay cache-friendly.
pub const DEFAULT_BUF: usize = 1 << 20;

/// A half-open byte range `[start, end)` of a file, aligned so that
/// `start` is a line start and `end` is one past a line end (or the file
/// end). Produced by [`split_line_aligned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteRange {
    /// First byte of the range (a line start).
    pub start: u64,
    /// One past the last byte (one past a `\n`, or the file length).
    pub end: u64,
}

impl ByteRange {
    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Split the file region `[start, end)` into at most `chunks` line-aligned
/// byte ranges of roughly equal size, reading boundaries through the
/// buffered-`read` backend. See [`split_line_aligned_src`].
pub fn split_line_aligned(
    path: &Path,
    start: u64,
    end: u64,
    chunks: usize,
) -> Result<Vec<ByteRange>> {
    split_line_aligned_src(
        &ByteSource::open(path, IoBackend::Read)?,
        start,
        end,
        chunks,
    )
}

/// Split the file region `[start, end)` of an already-open [`ByteSource`]
/// into at most `chunks` line-aligned byte ranges of roughly equal size.
///
/// `start` must itself be a line start. Internal boundaries are moved
/// forward to the byte just past the next `\n`, so every line falls into
/// exactly one chunk and the chunks cover every byte of the region exactly
/// once (a trailing line without a final newline goes to the last chunk).
/// Fewer than `chunks` ranges are returned when lines are too long or the
/// region is too small to split further; an empty region yields no ranges.
///
/// The boundaries depend only on the bytes, so they are identical for
/// every backend of `src`.
pub fn split_line_aligned_src(
    src: &ByteSource,
    start: u64,
    end: u64,
    chunks: usize,
) -> Result<Vec<ByteRange>> {
    if end <= start {
        return Ok(Vec::new());
    }
    let chunks = chunks.max(1) as u64;
    let len = end - start;
    let target = len.div_ceil(chunks).max(1);
    let mut ranges = Vec::with_capacity(chunks as usize);
    let mut cur = start;
    while cur < end {
        let goal = (cur + target).min(end);
        let boundary = if goal >= end {
            end
        } else {
            next_line_start(src, goal, end)?
        };
        ranges.push(ByteRange {
            start: cur,
            end: boundary,
        });
        cur = boundary;
    }
    Ok(ranges)
}

/// Find the start of the first line at or after `from`: scanning from
/// `from` for a `\n` and returning the position after it (clamped to
/// `end`).
fn next_line_start(src: &ByteSource, from: u64, end: u64) -> Result<u64> {
    if let Some(m) = src.mapped() {
        let lo = (from as usize).min(m.len());
        let hi = (end as usize).min(m.len());
        return Ok(match swar::find_byte(&m[lo..hi], b'\n') {
            Some(i) => (from + i as u64 + 1).min(end),
            None => end,
        });
    }
    let mut buf = [0u8; 8192];
    let mut pos = from;
    while pos < end {
        let want = buf.len().min((end - pos) as usize);
        let n = src.read_at(pos, &mut buf[..want])?;
        if n == 0 {
            return Ok(end);
        }
        if let Some(i) = swar::find_byte(&buf[..n], b'\n') {
            return Ok((pos + i as u64 + 1).min(end));
        }
        pos += n as u64;
    }
    Ok(end)
}

/// Sequential line reader with explicit byte offsets, over either I/O
/// backend: the `Read` backend refills a private 1 MiB buffer with
/// positioned reads; the `Mmap` backend scans the mapping in place and
/// only copies the one line being returned.
pub struct LineReader {
    src: Arc<ByteSource>,
    /// Byte offset of the *next* line to be returned.
    offset: u64,
    /// Reading stops once `offset` reaches this bound (`u64::MAX` for
    /// whole-file readers).
    end: u64,
    /// Buffered window (`Read` backend only; unused when mapped).
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    buf_pos: usize,
    /// File offset the next refill reads from.
    next_fill: u64,
}

impl LineReader {
    /// Open a file for sequential line reading (buffered `read` backend).
    pub fn open(path: &Path) -> Result<LineReader> {
        Self::open_with(path, IoBackend::Read)
    }

    /// Open a file for sequential line reading with an explicit backend.
    pub fn open_with(path: &Path, backend: IoBackend) -> Result<LineReader> {
        Self::open_at_with(path, 0, backend)
    }

    /// Open and skip to `offset` (e.g. resume after a header or an append
    /// high-water mark). `offset` must be a line start.
    pub fn open_at(path: &Path, offset: u64) -> Result<LineReader> {
        Self::open_at_with(path, offset, IoBackend::Read)
    }

    /// [`LineReader::open_at`] with an explicit backend.
    pub fn open_at_with(path: &Path, offset: u64, backend: IoBackend) -> Result<LineReader> {
        let src = Arc::new(ByteSource::open(path, backend)?);
        src.advise_sequential();
        Ok(Self::from_source(
            src,
            ByteRange {
                start: offset,
                end: u64::MAX,
            },
        ))
    }

    /// Open a reader bounded to the line-aligned `range` (one chunk of a
    /// parallel scan): lines are returned until `range.end` is reached.
    pub fn open_range(path: &Path, range: ByteRange) -> Result<LineReader> {
        Self::open_range_with(path, range, IoBackend::Read)
    }

    /// [`LineReader::open_range`] with an explicit backend.
    pub fn open_range_with(
        path: &Path,
        range: ByteRange,
        backend: IoBackend,
    ) -> Result<LineReader> {
        Ok(Self::from_source(
            Arc::new(ByteSource::open(path, backend)?),
            range,
        ))
    }

    /// Read lines of `range` from an already-open shared source. This is
    /// the chunk-parallel fast path: the file is opened (and, on the mmap
    /// backend, mapped) **once**, and every worker slices its own range
    /// out of the same [`ByteSource`].
    pub fn from_source(src: Arc<ByteSource>, range: ByteRange) -> LineReader {
        LineReader {
            src,
            offset: range.start,
            end: range.end,
            buf: Vec::new(),
            buf_pos: 0,
            next_fill: range.start,
        }
    }

    /// Byte offset where the *next* line starts (equivalently: one past
    /// the end of the last line returned, including its newline bytes).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The I/O source serving this reader.
    pub fn source(&self) -> &Arc<ByteSource> {
        &self.src
    }

    /// Read the next line into `buf` (cleared first; newline stripped).
    ///
    /// Returns the byte offset of the line start, or `None` at EOF.
    /// A final line without a trailing newline is returned normally.
    pub fn next_line(&mut self, buf: &mut Vec<u8>) -> Result<Option<u64>> {
        buf.clear();
        let start = self.offset;
        if start >= self.end {
            return Ok(None);
        }
        if let Some(m) = self.src.mapped() {
            // Zero-copy scan of the mapping; only the returned line is
            // copied out (callers reuse `buf` across the whole file).
            if start >= m.len() as u64 {
                return Ok(None);
            }
            let rest = &m[start as usize..];
            let consumed = match swar::find_byte(rest, b'\n') {
                Some(i) => i + 1,
                None => rest.len(),
            };
            self.offset += consumed as u64;
            let mut line = &rest[..consumed];
            if line.last() == Some(&b'\n') {
                line = &line[..line.len() - 1];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
            }
            buf.extend_from_slice(line);
            return Ok(Some(start));
        }
        // Buffered `read` backend: accumulate until a newline or EOF.
        let mut consumed = 0u64;
        loop {
            if self.buf_pos >= self.buf.len() && !self.refill()? {
                break; // EOF
            }
            let chunk = &self.buf[self.buf_pos..];
            match swar::find_byte(chunk, b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&chunk[..=i]);
                    self.buf_pos += i + 1;
                    consumed += i as u64 + 1;
                    break;
                }
                None => {
                    buf.extend_from_slice(chunk);
                    consumed += chunk.len() as u64;
                    self.buf_pos = self.buf.len();
                }
            }
        }
        if consumed == 0 {
            return Ok(None);
        }
        self.offset += consumed;
        if buf.last() == Some(&b'\n') {
            buf.pop();
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
        }
        Ok(Some(start))
    }

    /// Refill the buffered window from the source; false at EOF.
    fn refill(&mut self) -> Result<bool> {
        self.buf.resize(DEFAULT_BUF, 0);
        let n = self.src.read_at(self.next_fill, &mut self.buf)?;
        self.buf.truncate(n);
        self.buf_pos = 0;
        self.next_fill += n as u64;
        Ok(n > 0)
    }
}

/// Buffered random access for byte ranges requested in non-decreasing
/// start order.
///
/// The positional map turns a scan into "jump to these positions"; ranges
/// arrive sorted because tuples are processed in file order, so a single
/// forward-moving window suffices and the disk never seeks backwards.
/// With the `Mmap` backend slices come straight from the mapping — no
/// window, no refills, no copies.
pub struct SlidingWindow {
    src: ByteSource,
    file_len: u64,
    buf: Vec<u8>,
    /// File offset of `buf[0]`.
    buf_start: u64,
    /// Valid bytes in `buf`.
    buf_len: usize,
    min_read: usize,
}

impl SlidingWindow {
    /// Open a file for windowed access (buffered `read` backend).
    pub fn open(path: &Path) -> Result<SlidingWindow> {
        Self::with_capacity(path, DEFAULT_BUF)
    }

    /// Open a file for windowed access with an explicit backend.
    pub fn open_with(path: &Path, backend: IoBackend) -> Result<SlidingWindow> {
        Ok(Self::from_source(ByteSource::open(path, backend)?))
    }

    /// Open with a specific minimum read size.
    pub fn with_capacity(path: &Path, min_read: usize) -> Result<SlidingWindow> {
        let mut w = Self::from_source(ByteSource::open(path, IoBackend::Read)?);
        w.min_read = min_read.max(4096);
        Ok(w)
    }

    /// Windowed access over an already-open source.
    pub fn from_source(src: ByteSource) -> SlidingWindow {
        let file_len = src.len();
        SlidingWindow {
            src,
            file_len,
            buf: Vec::new(),
            buf_start: 0,
            buf_len: 0,
            min_read: DEFAULT_BUF,
        }
    }

    /// Total file length in bytes.
    pub fn len(&self) -> u64 {
        self.file_len
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file_len == 0
    }

    /// Bytes `[start, start + len)`, clamped to the file end.
    ///
    /// `start` must be ≥ the `start` of the previous call (monotonic
    /// access); on the `Read` backend violating this is a logic error
    /// that returns an internal error rather than corrupting the window
    /// (the mapping-backed window has no such hazard and simply serves
    /// the slice).
    pub fn slice(&mut self, start: u64, len: usize) -> Result<&[u8]> {
        let len = len.min((self.file_len.saturating_sub(start)) as usize);
        if self.src.mapped().is_none() {
            if start < self.buf_start {
                return Err(nodb_common::NoDbError::internal(format!(
                    "SlidingWindow accessed backwards: {start} < {}",
                    self.buf_start
                )));
            }
            let end = start + len as u64;
            if end > self.buf_start + self.buf_len as u64 {
                self.refill(start, len)?;
            }
            let rel = (start - self.buf_start) as usize;
            return Ok(&self.buf[rel..rel + len]);
        }
        let m = self.src.mapped().expect("checked above");
        let s = (start as usize).min(m.len());
        Ok(&m[s..s + len])
    }

    /// The rest of the line starting at `start`: bytes up to (not
    /// including) the next `\n`, or end of file.
    pub fn line_at(&mut self, start: u64) -> Result<&[u8]> {
        // Probe in growing windows until a newline is found.
        let mut probe = 256usize;
        loop {
            let max = (self.file_len - start) as usize;
            let want = probe.min(max);
            // Find newline inside the probed slice without holding the
            // borrow across the loop iteration.
            let pos = {
                let s = self.slice(start, want)?;
                swar::find_byte(s, b'\n')
            };
            match pos {
                Some(p) => {
                    let mut end = p;
                    let s = self.slice(start, want)?;
                    if end > 0 && s[end - 1] == b'\r' {
                        end -= 1;
                    }
                    return self.slice(start, end);
                }
                None if want == max => return self.slice(start, max),
                None => probe *= 4,
            }
        }
    }

    fn refill(&mut self, start: u64, len: usize) -> Result<()> {
        let read_len = len.max(self.min_read);
        let read_len = read_len.min((self.file_len - start) as usize);
        // Keep any overlapping tail? Simpler: re-read from `start`.
        self.buf.resize(read_len, 0);
        let done = self.src.read_at(start, &mut self.buf)?;
        self.buf.truncate(done);
        self.buf_start = start;
        self.buf_len = done;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;

    fn write_file(lines: &[&str]) -> (TempDir, std::path::PathBuf) {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("data.csv");
        std::fs::write(&p, lines.join("\n")).unwrap();
        (td, p)
    }

    /// Every backend worth testing on this platform.
    fn backends() -> Vec<IoBackend> {
        if cfg!(unix) {
            vec![IoBackend::Read, IoBackend::Mmap]
        } else {
            vec![IoBackend::Read]
        }
    }

    #[test]
    fn line_reader_tracks_offsets() {
        let (_td, p) = write_file(&["abc", "de", "", "fgh"]);
        for backend in backends() {
            let mut r = LineReader::open_with(&p, backend).unwrap();
            let mut buf = Vec::new();
            let mut got = Vec::new();
            while let Some(off) = r.next_line(&mut buf).unwrap() {
                got.push((off, String::from_utf8(buf.clone()).unwrap()));
            }
            assert_eq!(
                got,
                vec![
                    (0, "abc".to_string()),
                    (4, "de".to_string()),
                    (7, "".to_string()),
                    (8, "fgh".to_string()),
                ],
                "{backend}"
            );
        }
    }

    #[test]
    fn line_reader_handles_trailing_newline_and_crlf() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        std::fs::write(&p, "a\r\nb\n").unwrap();
        for backend in backends() {
            let mut r = LineReader::open_with(&p, backend).unwrap();
            let mut buf = Vec::new();
            assert_eq!(r.next_line(&mut buf).unwrap(), Some(0));
            assert_eq!(buf, b"a");
            assert_eq!(r.next_line(&mut buf).unwrap(), Some(3));
            assert_eq!(buf, b"b");
            assert_eq!(r.next_line(&mut buf).unwrap(), None);
        }
    }

    #[test]
    fn open_at_resumes_mid_file() {
        let (_td, p) = write_file(&["abc", "de"]);
        for backend in backends() {
            let mut r = LineReader::open_at_with(&p, 4, backend).unwrap();
            let mut buf = Vec::new();
            assert_eq!(r.next_line(&mut buf).unwrap(), Some(4));
            assert_eq!(buf, b"de");
        }
    }

    #[test]
    fn line_reader_over_empty_file_is_done_immediately() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("empty.csv");
        std::fs::write(&p, "").unwrap();
        for backend in backends() {
            let mut r = LineReader::open_with(&p, backend).unwrap();
            let mut buf = Vec::new();
            assert_eq!(r.next_line(&mut buf).unwrap(), None, "{backend}");
        }
    }

    #[test]
    fn sliding_window_serves_monotonic_ranges() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 4096).unwrap();
        assert_eq!(w.slice(0, 3).unwrap(), b"012");
        assert_eq!(w.slice(2, 4).unwrap(), b"2345");
        assert_eq!(w.slice(10, 5).unwrap(), b"abcde");
        // Clamped at EOF.
        assert_eq!(w.slice(18, 10).unwrap(), b"ij");
        // Backwards access is rejected.
        assert!(w.slice(0, 1).is_err() || w.buf_start == 0);
    }

    #[test]
    fn sliding_window_backends_serve_identical_slices() {
        let (_td, p) = write_file(&["first,line", "second", "third"]);
        for backend in backends() {
            let mut w = SlidingWindow::open_with(&p, backend).unwrap();
            assert_eq!(w.slice(0, 5).unwrap(), b"first");
            assert_eq!(w.slice(11, 6).unwrap(), b"second");
            assert_eq!(w.line_at(0).unwrap(), b"first,line");
            assert_eq!(w.line_at(18).unwrap(), b"third");
            // Clamped at EOF.
            assert_eq!(w.slice(20, 100).unwrap(), b"ird");
        }
    }

    #[test]
    fn sliding_window_small_buffer_refills() {
        let (_td, p) = write_file(&["0123456789abcdefghij"]);
        let mut w = SlidingWindow::with_capacity(&p, 1).unwrap();
        // min_read clamps to 4096 internally, so force tiny by direct len.
        assert_eq!(w.slice(0, 2).unwrap(), b"01");
        assert_eq!(w.slice(15, 5).unwrap(), b"fghij");
    }

    #[test]
    fn line_at_stops_at_newline() {
        let (_td, p) = write_file(&["first,line", "second"]);
        let mut w = SlidingWindow::open(&p).unwrap();
        assert_eq!(w.line_at(0).unwrap(), b"first,line");
        assert_eq!(w.line_at(11).unwrap(), b"second");
    }

    /// Read all lines of `range` through a bounded reader.
    fn range_lines(p: &std::path::Path, range: ByteRange) -> Vec<Vec<u8>> {
        range_lines_with(p, range, IoBackend::Read)
    }

    fn range_lines_with(p: &std::path::Path, range: ByteRange, backend: IoBackend) -> Vec<Vec<u8>> {
        let mut r = LineReader::open_range_with(p, range, backend).unwrap();
        let mut buf = Vec::new();
        let mut out = Vec::new();
        while r.next_line(&mut buf).unwrap().is_some() {
            out.push(buf.clone());
        }
        out
    }

    #[test]
    fn split_covers_region_exactly_once() {
        let (_td, p) = write_file(&["aaaa", "bb", "cccccc", "d", "ee", "ffff"]);
        let len = std::fs::metadata(&p).unwrap().len();
        for chunks in 1..=8 {
            let ranges = split_line_aligned(&p, 0, len, chunks).unwrap();
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= chunks.max(1));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous, non-overlapping");
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn split_boundaries_are_line_aligned() {
        let (_td, p) = write_file(&["aaaa", "bb", "cccccc", "d", "ee", "ffff"]);
        let data = std::fs::read(&p).unwrap();
        let ranges = split_line_aligned(&p, 0, data.len() as u64, 3).unwrap();
        for r in &ranges[1..] {
            assert_eq!(
                data[r.start as usize - 1],
                b'\n',
                "chunk start {} must follow a newline",
                r.start
            );
        }
    }

    #[test]
    fn split_is_identical_across_backends() {
        let (_td, p) = write_file(&["aaaa", "bb", "cccccc", "d", "ee", "ffff"]);
        let len = std::fs::metadata(&p).unwrap().len();
        for chunks in 1..=8 {
            let base = split_line_aligned(&p, 0, len, chunks).unwrap();
            for backend in backends() {
                let src = ByteSource::open(&p, backend).unwrap();
                let got = split_line_aligned_src(&src, 0, len, chunks).unwrap();
                assert_eq!(got, base, "chunks={chunks} backend={backend}");
            }
        }
    }

    #[test]
    fn split_of_empty_region_is_empty() {
        let (_td, p) = write_file(&["abc"]);
        assert!(split_line_aligned(&p, 3, 3, 4).unwrap().is_empty());
        assert!(split_line_aligned(&p, 5, 3, 4).unwrap().is_empty());
    }

    #[test]
    fn split_single_long_line_yields_one_chunk() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        std::fs::write(&p, "x".repeat(10_000)).unwrap();
        let ranges = split_line_aligned(&p, 0, 10_000, 8).unwrap();
        assert_eq!(
            ranges,
            vec![ByteRange {
                start: 0,
                end: 10_000
            }]
        );
    }

    #[test]
    fn open_range_stops_at_chunk_end() {
        let (_td, p) = write_file(&["abc", "de", "fgh"]);
        for backend in backends() {
            // "abc\nde\nfgh" — chunk covering only the first two lines.
            let lines = range_lines_with(&p, ByteRange { start: 0, end: 7 }, backend);
            assert_eq!(lines, vec![b"abc".to_vec(), b"de".to_vec()]);
            let rest = range_lines_with(&p, ByteRange { start: 7, end: 10 }, backend);
            assert_eq!(rest, vec![b"fgh".to_vec()]);
        }
    }

    #[test]
    fn shared_source_slices_ranges_like_private_readers() {
        let (_td, p) = write_file(&["abc", "de", "fgh", "ij"]);
        let len = std::fs::metadata(&p).unwrap().len();
        for backend in backends() {
            let src = Arc::new(ByteSource::open(&p, backend).unwrap());
            let ranges = split_line_aligned_src(&src, 0, len, 3).unwrap();
            let mut all = Vec::new();
            for r in &ranges {
                let mut reader = LineReader::from_source(Arc::clone(&src), *r);
                let mut buf = Vec::new();
                while let Some(off) = reader.next_line(&mut buf).unwrap() {
                    all.push((off, buf.clone()));
                }
            }
            let mut whole = Vec::new();
            let mut r = LineReader::open(&p).unwrap();
            let mut buf = Vec::new();
            while let Some(off) = r.next_line(&mut buf).unwrap() {
                whole.push((off, buf.clone()));
            }
            assert_eq!(all, whole, "{backend}");
        }
    }

    mod chunking_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The SWAR newline scanner against a scalar reference split,
            /// over arbitrary *binary* bodies (all byte values, embedded
            /// `\r`, runs of newlines, short tails straddling the 8-byte
            /// word) on both I/O backends.
            #[test]
            fn lines_match_scalar_split(
                body in proptest::collection::vec(
                    prop_oneof![Just(b'\n'), Just(b'\r'), any::<u8>()],
                    0..200,
                ),
            ) {
                let td = TempDir::new("nodb-swar-prop").unwrap();
                let p = td.file("d.bin");
                std::fs::write(&p, &body).unwrap();
                // Scalar reference: split on `\n`, strip one trailing
                // `\r`, drop a final empty segment after a trailing
                // newline (matches next_line's contract).
                let mut want: Vec<Vec<u8>> = Vec::new();
                let mut cur: Vec<u8> = Vec::new();
                for &b in &body {
                    if b == b'\n' {
                        if cur.last() == Some(&b'\r') {
                            cur.pop();
                        }
                        want.push(std::mem::take(&mut cur));
                    } else {
                        cur.push(b);
                    }
                }
                // A final unterminated line keeps any trailing `\r`: the
                // CR is only an artifact when a newline follows it.
                if !cur.is_empty() {
                    want.push(cur);
                }
                for backend in [IoBackend::Read, IoBackend::Mmap] {
                    let mut r = LineReader::open_with(&p, backend).unwrap();
                    let mut buf = Vec::new();
                    let mut got = Vec::new();
                    while r.next_line(&mut buf).unwrap().is_some() {
                        got.push(buf.clone());
                    }
                    prop_assert_eq!(&got, &want);
                }
            }

            /// Line-aligned chunking over arbitrary CSV-ish bodies covers
            /// every byte exactly once and never splits a line: reading
            /// the chunks in order yields exactly the lines of the whole
            /// file, including trailing-newline / no-trailing-newline,
            /// empty-line and CRLF edge cases.
            #[test]
            fn chunking_partitions_lines_exactly(
                lines in proptest::collection::vec("[a-z,]{0,12}", 0..40),
                trailing_newline in any::<bool>(),
                crlf in any::<bool>(),
                chunks in 1usize..9,
            ) {
                let sep = if crlf { "\r\n" } else { "\n" };
                let mut body = lines.join(sep);
                if trailing_newline && !body.is_empty() {
                    body.push_str(sep);
                }
                let td = TempDir::new("nodb-csv-prop").unwrap();
                let p = td.file("d.csv");
                std::fs::write(&p, &body).unwrap();
                let len = body.len() as u64;

                let ranges = split_line_aligned(&p, 0, len, chunks).unwrap();

                // Exact coverage: contiguous, non-empty, spanning [0, len).
                let mut covered = 0u64;
                for r in &ranges {
                    prop_assert_eq!(r.start, covered);
                    prop_assert!(r.end > r.start);
                    covered = r.end;
                }
                prop_assert_eq!(covered, len);
                // Boundaries are line-aligned.
                let bytes = body.as_bytes();
                for r in ranges.iter().skip(1) {
                    prop_assert_eq!(bytes[r.start as usize - 1], b'\n');
                }
                // Reading the chunks in order reproduces the file's lines.
                let whole = {
                    let mut r = LineReader::open(&p).unwrap();
                    let mut buf = Vec::new();
                    let mut out = Vec::new();
                    while r.next_line(&mut buf).unwrap().is_some() {
                        out.push(buf.clone());
                    }
                    out
                };
                let mut chunked = Vec::new();
                for r in &ranges {
                    chunked.extend(range_lines(&p, *r));
                }
                prop_assert_eq!(chunked, whole);
            }

            /// The mmap and buffered-read backends are interchangeable:
            /// over arbitrary bodies (CRLF, trailing newline, empty
            /// files, regions split into more chunks than lines) both
            /// backends produce identical line offsets, line bytes,
            /// chunk boundaries and per-chunk line sets — whether each
            /// chunk re-opens the file or slices one shared source.
            #[test]
            fn backends_are_bit_identical(
                lines in proptest::collection::vec("[a-z,]{0,12}", 0..40),
                trailing_newline in any::<bool>(),
                crlf in any::<bool>(),
                chunks in 1usize..9,
            ) {
                let sep = if crlf { "\r\n" } else { "\n" };
                let mut body = lines.join(sep);
                if trailing_newline && !body.is_empty() {
                    body.push_str(sep);
                }
                let td = TempDir::new("nodb-csv-prop").unwrap();
                let p = td.file("d.csv");
                std::fs::write(&p, &body).unwrap();
                let len = body.len() as u64;

                // Whole-file sequences: (offset, line) pairs per backend.
                let mut per_backend = Vec::new();
                for backend in backends() {
                    let mut r = LineReader::open_with(&p, backend).unwrap();
                    let mut buf = Vec::new();
                    let mut out = Vec::new();
                    while let Some(off) = r.next_line(&mut buf).unwrap() {
                        out.push((off, buf.clone()));
                    }
                    per_backend.push(out);
                }
                for w in per_backend.windows(2) {
                    prop_assert_eq!(&w[0], &w[1]);
                }

                // Chunk boundaries and per-chunk contents.
                let base_ranges = split_line_aligned(&p, 0, len, chunks).unwrap();
                for backend in backends() {
                    let src = Arc::new(ByteSource::open(&p, backend).unwrap());
                    let ranges = split_line_aligned_src(&src, 0, len, chunks).unwrap();
                    prop_assert_eq!(&ranges, &base_ranges);
                    for range in &ranges {
                        let private = range_lines_with(&p, *range, backend);
                        let mut shared = Vec::new();
                        let mut r = LineReader::from_source(Arc::clone(&src), *range);
                        let mut buf = Vec::new();
                        while r.next_line(&mut buf).unwrap().is_some() {
                            shared.push(buf.clone());
                        }
                        let reference = range_lines(&p, *range);
                        prop_assert_eq!(&private, &reference);
                        prop_assert_eq!(&shared, &reference);
                    }
                }
            }
        }
    }

    #[test]
    fn line_at_handles_crlf_and_long_lines() {
        let td = TempDir::new("nodb-csv").unwrap();
        let p = td.file("d.csv");
        let long = "x".repeat(5000);
        std::fs::write(&p, format!("{long}\r\ntail")).unwrap();
        for backend in backends() {
            let mut w = SlidingWindow::open_with(&p, backend).unwrap();
            assert_eq!(w.line_at(0).unwrap().len(), 5000, "{backend}");
        }
    }
}
