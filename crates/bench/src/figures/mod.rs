//! One regeneration function per figure of the paper's evaluation.

pub mod ablations;
pub mod fits;
pub mod micro;
pub mod systems;
pub mod tpch;

use std::path::Path;

use nodb_common::{Result, Schema};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Scale;

/// Experiment registry: (id, description, runner).
pub type Runner = fn(Scale, &Path) -> Result<()>;

/// All figures in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "fig3",
            "positional-map storage budget vs average query time",
            micro::fig3,
        ),
        (
            "fig4",
            "positional-map scalability with file size",
            micro::fig4,
        ),
        (
            "fig5",
            "query sequence: Baseline / C / PM / PM+C variants",
            micro::fig5,
        ),
        (
            "fig6",
            "adapting to workload shifts (5 epochs)",
            micro::fig6,
        ),
        (
            "fig7",
            "cumulative 9-query sequence vs other DBMS (incl. loading)",
            systems::fig7,
        ),
        ("fig8a", "per-query time vs selectivity", systems::fig8a),
        ("fig8b", "per-query time vs projectivity", systems::fig8b),
        ("fig9", "TPC-H Q10/Q14 from cold, incl. loading", tpch::fig9),
        ("fig10", "TPC-H warm query times", tpch::fig10),
        (
            "fig11",
            "FITS: procedural (CFITSIO-style) vs PostgresRaw",
            fits::fig11,
        ),
        (
            "fig12",
            "on-the-fly statistics: 4 instances of TPC-H Q1",
            tpch::fig12,
        ),
        (
            "fig13",
            "attribute width 16 vs 64: PostgreSQL vs PostgresRaw",
            systems::fig13,
        ),
        (
            "abl_block_size",
            "ablation: positional-map block size",
            ablations::abl_block_size,
        ),
        (
            "abl_eviction",
            "ablation: cost-aware vs plain-LRU cache eviction",
            ablations::abl_eviction,
        ),
        (
            "abl_anchor_distance",
            "ablation: anchored-navigation distance",
            ablations::abl_anchor_distance,
        ),
    ]
}

// ----- shared construction helpers ---------------------------------------

/// An engine with one in-situ micro table `t`.
pub(crate) fn micro_engine(
    cfg: NoDbConfig,
    path: &Path,
    schema: &Schema,
    mode: AccessMode,
) -> NoDb {
    let mut db = NoDb::new(cfg).expect("engine");
    db.register_csv("t", path, schema.clone(), CsvOptions::default(), mode)
        .expect("register");
    db
}

/// `count` random `width`-attribute projection queries (§5.1.1 setup:
/// "each query asks for 10 random attributes of the raw file,
/// selectivity is 100%").
pub(crate) fn random_projections(
    cols: usize,
    count: usize,
    width: usize,
    seed: u64,
) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut picks: Vec<usize> = (0..width).map(|_| rng.gen_range(0..cols)).collect();
            picks.sort_unstable();
            picks.dedup();
            let list = picks
                .iter()
                .map(|c| format!("c{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("select {list} from t")
        })
        .collect()
}

/// Random projections confined to a column region (Figure 6 epochs).
pub(crate) fn region_projections(
    region: std::ops::Range<usize>,
    count: usize,
    width: usize,
    seed: u64,
) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut picks: Vec<usize> = (0..width).map(|_| rng.gen_range(region.clone())).collect();
            picks.sort_unstable();
            picks.dedup();
            let list = picks
                .iter()
                .map(|c| format!("c{c}"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("select {list} from t")
        })
        .collect()
}

/// A Figure-7/8 style query: one selection predicate, aggregations over a
/// fraction of the remaining attributes.
///
/// * `selectivity` ∈ (0, 1]: fraction of rows passing `c0 < X` (values
///   are uniform on [0, 10⁹)).
/// * `projectivity` ∈ (0, 1]: fraction of attributes aggregated.
pub(crate) fn sel_proj_query(cols: usize, selectivity: f64, projectivity: f64) -> String {
    let cutoff = (selectivity * 1e9) as u64;
    let n_proj = ((cols - 1) as f64 * projectivity).round().max(1.0) as usize;
    let aggs = (1..=n_proj)
        .map(|c| format!("sum(c{c})"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("select {aggs} from t where c0 < {cutoff}")
}
