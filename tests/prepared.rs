//! Session-API coverage: prepared statements with parameter binding and
//! lazy query cursors.
//!
//! Two properties are proved here:
//!
//! * **Differential** — a statement prepared once and executed with
//!   bound parameters returns rows identical to the equivalent SQL with
//!   the values inlined as literals, across cold→warm transitions,
//!   1 and 4 scan threads, CSV and JSONL physical layouts. Preparation
//!   happens once per statement; nothing about re-execution may leak
//!   into results.
//! * **Laziness** — `query_stream` pulls rows through the Volcano tree
//!   on demand, so a `LIMIT k` (or an early-dropped cursor) provably
//!   stops the underlying raw-file scan early ([`ScanMetrics`] shows a
//!   fraction of the file's bytes/rows touched), and the auxiliary
//!   structures the partial scan *did* build keep serving the next
//!   query.

use std::path::{Path, PathBuf};

use nodb::common::{Row, Schema, TempDir, Value};
use nodb::core::{AccessMode, NoDb, NoDbConfig, Params};
use nodb::csv::{CsvOptions, CsvWriter};
use nodb::json::{JsonlOptions, JsonlWriter};

const SCHEMA: &str = "id int, grp text, score double, day date, big bigint";

/// Deterministic mixed-type rows (with NULLs) shared by both layouts.
fn data_rows(n: usize) -> Vec<Row> {
    let groups = ["alpha", "beta", "gamma", "delta", "epsilon"];
    (0..n)
        .map(|i| {
            Row(vec![
                Value::Int32(i as i32),
                if i % 13 == 12 {
                    Value::Null
                } else {
                    Value::Text(groups[i % groups.len()].into())
                },
                if i % 7 == 6 {
                    Value::Null
                } else {
                    Value::Float64((i % 1000) as f64 / 8.0)
                },
                Value::Date(
                    nodb::common::Date::parse(&format!("2026-{:02}-{:02}", 1 + i % 12, 1 + i % 28))
                        .unwrap(),
                ),
                Value::Int64(1_000_000_000_000 + i as i64 * 37),
            ])
        })
        .collect()
}

struct Fixture {
    _td: TempDir,
    csv: PathBuf,
    jsonl: PathBuf,
    schema: Schema,
}

fn fixture(rows: usize) -> Fixture {
    let td = TempDir::new("nodb-prepared").unwrap();
    let schema = Schema::parse(SCHEMA).unwrap();
    let data = data_rows(rows);
    let csv = td.file("t.csv");
    let mut w = CsvWriter::create(&csv, CsvOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    let jsonl = td.file("t.jsonl");
    let mut w = JsonlWriter::create(&jsonl, &schema, JsonlOptions::default()).unwrap();
    for r in &data {
        w.write_row(r).unwrap();
    }
    w.finish().unwrap();
    Fixture {
        _td: td,
        csv,
        jsonl,
        schema,
    }
}

fn engine(f: &Fixture, format: &str, threads: usize) -> NoDb {
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = threads;
    let mut db = NoDb::new(cfg).unwrap();
    match format {
        "csv" => db
            .register_csv(
                "t",
                &f.csv,
                f.schema.clone(),
                CsvOptions::default(),
                AccessMode::InSitu,
            )
            .unwrap(),
        "jsonl" => db
            .register_jsonl("t", &f.jsonl, f.schema.clone(), AccessMode::InSitu)
            .unwrap(),
        other => panic!("unknown format {other}"),
    }
    db
}

/// One parameterized statement, its literal-inlined twin, and the
/// bindings to sweep. `{0}`/`{1}` in the literal template are replaced
/// textually with each binding.
struct Case {
    prepared: &'static str,
    literal: &'static str,
    bindings: &'static [&'static [&'static str]],
}

const CASES: &[Case] = &[
    Case {
        prepared: "select id, score from t where big < ? order by id",
        literal: "select id, score from t where big < {0} order by id",
        bindings: &[&["1000000001000"], &["1000000200000"], &["999999999999"]],
    },
    Case {
        prepared: "select grp, count(*) n, sum(score) from t \
                   where score between $1 and $2 group by grp order by grp",
        literal: "select grp, count(*) n, sum(score) from t \
                  where score between {0} and {1} group by grp order by grp",
        bindings: &[&["10.0", "50.0"], &["0.0", "124.875"], &["90.0", "20.0"]],
    },
    Case {
        prepared: "select count(*) from t where day >= ? and grp = ?",
        literal: "select count(*) from t where day >= date {0} and grp = {1}",
        bindings: &[
            &["2026-06-01", "alpha"],
            &["2026-01-01", "delta"],
            &["2026-12-01", "nope"],
        ],
    },
    Case {
        prepared: "select id from t where id = $1 or big < $2 order by id",
        literal: "select id from t where id = {0} or big < {1} order by id",
        bindings: &[&["17", "1000000000500"], &["4000", "1000000000000"]],
    },
    // Parameters inside an IN list (desugared to an OR-chain at bind
    // time) — the common "WHERE key IN (?, ?)" client shape.
    Case {
        prepared: "select id, grp from t where grp in (?, ?) order by id",
        literal: "select id, grp from t where grp in ({0}, {1}) order by id",
        bindings: &[
            &["alpha", "gamma"],
            &["beta", "beta"],
            &["nope", "also-nope"],
        ],
    },
    Case {
        prepared: "select count(*) from t where id not in ($1, $2, $3)",
        literal: "select count(*) from t where id not in ({0}, {1}, {2})",
        bindings: &[&["0", "1", "2"], &["5999", "17", "40000"]],
    },
    // A parameter as the LIKE pattern, typed Text at bind time.
    Case {
        prepared: "select id from t where grp like ? order by id",
        literal: "select id from t where grp like {0} order by id",
        bindings: &[&["al%"], &["%ta"], &["%e%"], &["delta"]],
    },
];

/// Render one literal binding into the template (strings/dates quoted).
fn inline(template: &str, binding: &[&str]) -> String {
    let mut out = template.to_string();
    for (i, v) in binding.iter().enumerate() {
        let needs_quotes = v.parse::<f64>().is_err();
        let rendered = if needs_quotes {
            format!("'{v}'")
        } else {
            (*v).to_string()
        };
        out = out.replace(&format!("{{{i}}}"), &rendered);
    }
    out
}

/// Bind one textual value as a typed parameter (ints as Int64, floats
/// as Float64, everything else as text — exactly the types literal SQL
/// would produce; dates coerce from text via the bind-time type).
fn params_of(binding: &[&str]) -> Params {
    let mut p = Params::new();
    for v in binding {
        if let Ok(i) = v.parse::<i64>() {
            p.push(i);
        } else if let Ok(f) = v.parse::<f64>() {
            p.push(f);
        } else {
            p.push(*v);
        }
    }
    p
}

/// The core differential matrix: CSV & JSONL × 1 & 4 scan threads, each
/// statement prepared once and swept over its bindings twice — first
/// against a cold table (no aux structures), then warm (map + cache +
/// stats populated by the first sweep, so the refreshed plans run
/// against different statistics). Every execution must equal its
/// literal-inlined twin on a separate, same-config engine.
#[test]
fn prepared_equals_literal_cold_and_warm() {
    let f = fixture(6_000);
    for format in ["csv", "jsonl"] {
        for threads in [1usize, 4] {
            let prepared_db = engine(&f, format, threads);
            let literal_db = engine(&f, format, threads);
            for case in CASES {
                let stmt = prepared_db.prepare(case.prepared).unwrap();
                for pass in ["cold", "warm"] {
                    for binding in case.bindings {
                        let got = stmt.query(&params_of(binding)).unwrap();
                        let want = literal_db.query(&inline(case.literal, binding)).unwrap();
                        assert_eq!(
                            got.rows, want.rows,
                            "{format}/{threads}t/{pass}: `{}` bound {binding:?}",
                            case.prepared
                        );
                        assert_eq!(got.schema.types(), want.schema.types());
                    }
                }
            }
        }
    }
}

/// Re-executing a prepared statement must also agree with itself across
/// thread counts and formats (same logical table): one statement per
/// engine, three executions each, all row-identical.
#[test]
fn prepared_reexecution_is_stable_across_engines() {
    let f = fixture(4_000);
    let sql = "select grp, count(*) from t where score < ? group by grp order by grp";
    let p = Params::new().bind(60.0);
    let mut reference: Option<Vec<Row>> = None;
    for format in ["csv", "jsonl"] {
        for threads in [1usize, 4] {
            let db = engine(&f, format, threads);
            let stmt = db.prepare(sql).unwrap();
            for round in 0..3 {
                let rows = stmt.query(&p).unwrap().rows;
                match &reference {
                    None => reference = Some(rows),
                    Some(want) => {
                        assert_eq!(&rows, want, "{format}/{threads}t round {round}")
                    }
                }
            }
        }
    }
}

/// LIMIT k through `query_stream` provably stops the cold scan early:
/// the engine tokenizes a small prefix of the file (block granularity),
/// not the whole of it — and the partially built auxiliary structures
/// serve the next query instead of being thrown away.
#[test]
fn limit_stops_the_scan_early_and_partial_aux_survives() {
    let f = fixture(40_000);
    for format in ["csv", "jsonl"] {
        let path: &Path = if format == "csv" { &f.csv } else { &f.jsonl };
        let file_len = std::fs::metadata(path).unwrap().len();
        // Single-threaded: the sequential cold path streams
        // block-at-a-time (the parallel pass stages the whole tail and
        // deliberately trades LIMIT early-exit for throughput).
        let db = engine(&f, format, 1);

        let cursor = db.query_stream("select id, grp from t limit 25").unwrap();
        let rows: Vec<Row> = cursor.map(|r| r.unwrap()).collect();
        assert_eq!(rows.len(), 25, "{format}");

        let m = db.metrics("t").unwrap();
        // 25 rows need one 4096-row positional-map block, i.e. a small
        // fraction of the 40k-row file, in bytes and in rows.
        assert!(
            m.bytes_tokenized * 4 < file_len,
            "{format}: tokenized {} of {file_len} bytes — scan did not stop early",
            m.bytes_tokenized
        );
        assert!(
            m.rows_emitted < 10_000,
            "{format}: {} rows pulled through the scan",
            m.rows_emitted
        );

        // The prefix the scan DID cover left usable aux structures…
        let aux = db.aux_info("t").unwrap();
        assert!(aux.posmap_pointers > 0, "{format}: no positions kept");

        // …and the next (full) query both is correct and reuses them.
        let full = db
            .query("select count(*), min(id), max(id) from t")
            .unwrap();
        assert_eq!(
            full.rows[0],
            Row(vec![
                Value::Int64(40_000),
                Value::Int32(0),
                Value::Int32(39_999)
            ]),
            "{format}"
        );
        let m2 = db.metrics("t").unwrap();
        assert!(
            m2.fields_via_map + m2.fields_from_cache > 0,
            "{format}: full query did not reuse the partial aux structures"
        );
    }
}

/// Dropping a cursor mid-stream (no LIMIT in the SQL at all) stops the
/// scan just the same — the consumer, not the query shape, decides how
/// much work happens.
#[test]
fn abandoned_cursor_stops_the_scan() {
    let f = fixture(40_000);
    let db = engine(&f, "csv", 1);
    let file_len = std::fs::metadata(&f.csv).unwrap().len();

    let mut cursor = db.query_stream("select id from t").unwrap();
    for _ in 0..10 {
        cursor.next().unwrap().unwrap();
    }
    drop(cursor);

    let m = db.metrics("t").unwrap();
    assert!(
        m.bytes_tokenized * 4 < file_len,
        "tokenized {} of {file_len} bytes after abandoning the cursor",
        m.bytes_tokenized
    );
    // The engine remains fully usable; the file was not left mid-state.
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(40_000));
}

/// Statements prepared before any statistics exist keep working as the
/// table warms up, and parameter re-binding sees refreshed plans (the
/// staleness the execute-time optimizer pass exists to prevent). The
/// observable contract: results never change, only the work profile.
#[test]
fn statement_outlives_cold_to_warm_transition() {
    let f = fixture(8_000);
    let db = engine(&f, "csv", 1);
    let stmt = db
        .prepare("select grp, sum(score) from t where id < ? group by grp order by grp")
        .unwrap();
    // Cold execution populates aux structures…
    let cold = stmt.query(&Params::new().bind(6_000i64)).unwrap();
    // …warm re-execution of the SAME statement object with a DIFFERENT
    // binding reads through map/cache.
    let warm = stmt.query(&Params::new().bind(6_000i64)).unwrap();
    assert_eq!(cold.rows, warm.rows);
    let m = db.metrics("t").unwrap();
    assert!(
        m.fields_via_map + m.fields_from_cache > 0,
        "warm re-execution did not touch the aux structures"
    );
    let other = stmt.query(&Params::new().bind(100i64)).unwrap();
    let literal = db
        .query("select grp, sum(score) from t where id < 100 group by grp order by grp")
        .unwrap();
    assert_eq!(other.rows, literal.rows);
}
