//! `nodb` — an interactive SQL shell over raw data files.
//!
//! ```text
//! $ nodb
//! nodb> \register events ./events.csv "day date, user text, action text, ms int"
//! nodb> select action, count(*) from events group by action order by count desc;
//! nodb> \metrics events
//! nodb> \quit
//! ```
//!
//! No loading step, ever: files are queried in place, and the engine's
//! positional map / cache / statistics build up behind your session.

use std::io::{BufRead, Write};
use std::path::Path;

use nodb_common::{knob, Schema};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_fits::FitsProvider;
use nodb_server::{collect_stats, NodbClient, StatsPayload};

mod commands;

use commands::{parse_line, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Engine knobs: every flag below comes from the shared registry
    // (`nodb_common::knob`) — environment variables seed the config
    // defaults, an explicit flag wins, and both surfaces share one
    // parser, so a typo'd value or flag name fails loudly here.
    let mut config = NoDbConfig::postgres_raw();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return;
            }
            flag => match knob::find_flag(flag) {
                Some(k) => {
                    i += 1;
                    let raw = args.get(i).cloned().unwrap_or_default();
                    if let Err(e) = config.set_knob(k.name, &raw) {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
                None => {
                    eprintln!("{} (see --help)", knob::unknown_flag_error(flag));
                    std::process::exit(2);
                }
            },
        }
        i += 1;
    }
    let io = config.effective_io_backend();
    let mut db = match NoDb::new(config) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to start engine: {e}");
            std::process::exit(1);
        }
    };

    println!("nodb — in-situ SQL over raw files (\\help for commands; io backend: {io})");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut timing = false;
    // `Some` while attached to a remote nodb-server via \connect; SQL
    // then streams over the wire instead of the embedded engine.
    let mut remote: Option<NodbClient> = None;
    loop {
        print!("nodb> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Accumulate SQL until a terminating `;`; backslash-commands are
        // single-line.
        if !line.starts_with('\\') {
            buffer.push_str(line);
            buffer.push(' ');
            if !line.ends_with(';') {
                continue;
            }
        }
        let input = if line.starts_with('\\') {
            line.to_string()
        } else {
            std::mem::take(&mut buffer)
        };
        match parse_line(&input) {
            Ok(Command::Quit) => break,
            Ok(Command::Help) => print_help(),
            Ok(cmd) => {
                if let Err(e) = execute(&mut db, &mut remote, cmd, &mut timing) {
                    eprintln!("error: {e}");
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn execute(
    db: &mut NoDb,
    remote: &mut Option<NodbClient>,
    cmd: Command,
    timing: &mut bool,
) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Connect { target } => {
            let client = NodbClient::connect(&target)?;
            println!("connected to {} at {target}", client.server());
            if let Some(old) = remote.replace(client) {
                let _ = old.close();
            }
        }
        Command::Disconnect => match remote.take() {
            Some(client) => {
                client.close()?;
                println!("disconnected; SQL runs on the embedded engine again");
            }
            None => println!("not connected"),
        },
        Command::Sql { sql } if remote.is_some() => {
            // Remote mode: stream frames off the wire. Identical output
            // shape to the embedded path; the server's shared engine
            // does the scanning, so other clients' queries warm ours.
            let t = std::time::Instant::now();
            let client = remote.as_mut().expect("guarded by remote.is_some()");
            let stream = client.stream(&sql, &[])?;
            let names: Vec<&str> = stream
                .schema()
                .fields()
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            println!("{}", names.join(" | "));
            let mut n = 0usize;
            for row in stream {
                println!("{}", row?);
                n += 1;
            }
            println!("({n} rows)");
            if *timing {
                println!("Time: {:.3} ms", t.elapsed().as_secs_f64() * 1e3);
            }
        }
        Command::Register { .. } if remote.is_some() => {
            return Err("\\register is not available while connected to a server; \
                        register tables with nodb-server --register, or \\disconnect first"
                .into());
        }
        Command::Register {
            name,
            path,
            schema,
            delimiter,
        } => {
            let p = Path::new(&path);
            if path.ends_with(".fits") {
                let provider = FitsProvider::open(p, None, true)?;
                let schema = provider.table().schema()?;
                db.register_provider(&name, schema, Box::new(provider))?;
            } else if path.ends_with(".jsonl") || path.ends_with(".ndjson") {
                let schema = Schema::parse(&schema.ok_or("JSONL files need a schema string")?)?;
                db.register_jsonl(&name, p, schema, AccessMode::InSitu)?;
            } else {
                let schema = Schema::parse(&schema.ok_or("CSV files need a schema string")?)?;
                let opts = CsvOptions {
                    delimiter,
                    has_header: false,
                };
                db.register_csv(&name, p, schema, opts, AccessMode::InSitu)?;
            }
            println!("registered `{name}` -> {path}");
        }
        Command::Metrics { table } => {
            // While \connect'ed, read the *server's* engine over the
            // Stats frame — the embedded engine has done no work, and
            // printing its zeros for a remote table would be a lie.
            let p = fetch_stats(db, remote, &table)?;
            print_metrics(&p);
        }
        Command::Stats { table } => {
            let p = fetch_stats(db, remote, &table)?;
            print_metrics(&p);
            print_profile(&p);
        }
        Command::Explain { .. } if remote.is_some() => {
            return Err("\\explain is not available while connected to a server; \
                        \\disconnect to plan against the embedded engine"
                .into());
        }
        Command::Explain { sql } => {
            // Typed plan: the tree text is the classic rendering; the
            // rewrite trace is extra shell-only context below it.
            let plan = db.explain_plan(&sql)?;
            print!("{}", plan.render());
            if !plan.applied_rules.is_empty() {
                println!("Rewrites applied: {}", plan.applied_rules.join(", "));
            }
        }
        Command::Sql { sql } => {
            // Stream from the cursor: rows print as the scan produces
            // them, and nothing holds the full result set in memory —
            // a LIMIT (or a closed pipe) stops the raw-file scan early.
            let t = std::time::Instant::now();
            let mut cursor = db.query_stream(&sql)?;
            println!("{}", cursor.columns().join(" | "));
            let mut n = 0usize;
            for row in cursor.by_ref() {
                println!("{}", row?);
                n += 1;
            }
            println!("({n} rows)");
            if *timing {
                println!("Time: {:.3} ms", t.elapsed().as_secs_f64() * 1e3);
            }
        }
        Command::Timing { setting } => {
            *timing = setting.unwrap_or(!*timing);
            println!("Timing is {}.", if *timing { "on" } else { "off" });
        }
        Command::Quit | Command::Help => {}
    }
    Ok(())
}

/// One observability snapshot for `table`, from wherever SQL currently
/// runs: the server's shared engine when `\connect`ed (over the Stats
/// frame), the embedded engine otherwise. Both paths produce the same
/// [`StatsPayload`], so `\metrics` / `\stats` render identically.
fn fetch_stats(
    db: &NoDb,
    remote: &mut Option<NodbClient>,
    table: &str,
) -> Result<StatsPayload, Box<dyn std::error::Error>> {
    match remote.as_mut() {
        Some(client) => Ok(client.table_stats(table)?),
        None => Ok(collect_stats(db, table)?),
    }
}

fn print_metrics(p: &StatsPayload) {
    println!(
        "scans={} rows_emitted={} tokenized={} parsed={} from_cache={} \
         via_map={} via_anchor={}",
        p.scans,
        p.rows_emitted,
        p.fields_tokenized,
        p.fields_parsed,
        p.fields_from_cache,
        p.fields_via_map,
        p.fields_via_anchor
    );
    println!(
        "posmap: {} pointers / {} bytes; cache: {} bytes ({:.1}% of budget); stats on {} attrs",
        p.posmap_pointers,
        p.posmap_bytes,
        p.cache_bytes,
        p.cache_utilization * 100.0,
        p.stats_attrs
    );
}

fn print_profile(p: &StatsPayload) {
    let ms = |ns: u64| ns as f64 / 1e6;
    println!(
        "phase: io {:.3} ms / {} bytes; tokenize {:.3} ms / {} bytes; \
         parse {:.3} ms / {} values",
        ms(p.io_ns),
        p.io_bytes,
        ms(p.tokenize_ns),
        p.tokenize_bytes,
        ms(p.parse_ns),
        p.parse_values
    );
    if p.heats.is_empty() {
        println!("workload: no column touches recorded");
    } else {
        let cols: Vec<String> = p
            .heats
            .iter()
            .map(|(attr, heat)| format!("#{attr}={heat}"))
            .collect();
        println!("workload heat (decayed touches): {}", cols.join(" "));
    }
}

fn print_help() {
    let flags: Vec<String> = knob::all()
        .into_iter()
        .map(|k| format!("[{} {}]", k.flag, k.value_hint))
        .collect();
    println!("usage: nodb {}\n", flags.join(" "));
    println!("engine knobs (flag wins over its environment variable):");
    print!("{}", NoDbConfig::knob_help());
    println!(
        "\n\
         \\register NAME PATH \"col type, ...\"   register a CSV file (in situ)\n\
         \\register NAME PATH.jsonl \"col type, ...\"  register a JSON Lines file (keys = column names)\n\
         \\register NAME PATH.fits              register a FITS binary table\n\
         \\sep NAME PATH '|' \"col type, ...\"    register with a delimiter\n\
         \\explain SELECT ...                   show the query plan\n\
         \\metrics NAME                         show scan work counters\n\
         \\stats NAME                           counters + phase timings + workload heat\n\
         \x20                                     (local, or the server's when \\connect'ed)\n\
         \\connect HOST:PORT | unix:PATH        attach to a running nodb-server; SQL runs there\n\
         \\disconnect                           detach and run SQL locally again\n\
         \\timing [on|off]                      toggle per-statement wall-clock reporting\n\
         \\help                                 this text\n\
         \\quit                                 exit\n\
         SELECT ... ;                          run SQL (terminate with ;)"
    );
}
