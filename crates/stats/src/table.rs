//! Per-table statistics registry.

use std::collections::HashMap;

use crate::column::ColumnStats;

/// Fallback distinct-count guess for attributes without statistics
/// (mirrors PostgreSQL's 200-distinct default).
pub const DEFAULT_NDV: f64 = 200.0;

/// Statistics for one table: row count plus per-attribute stats, grown
/// incrementally "as queries request more attributes of a raw file"
/// (§4.4).
#[derive(Debug, Default, Clone)]
pub struct TableStats {
    columns: HashMap<u32, ColumnStats>,
    row_count: Option<u64>,
}

impl TableStats {
    /// Empty statistics.
    pub fn new() -> TableStats {
        TableStats::default()
    }

    /// Known or estimated row count.
    pub fn row_count(&self) -> Option<u64> {
        self.row_count
    }

    /// Record the exact row count (known once a scan reaches EOF).
    pub fn set_row_count(&mut self, n: u64) {
        self.row_count = Some(n);
    }

    /// Statistics for attribute `attr`, if collected.
    pub fn column(&self, attr: u32) -> Option<&ColumnStats> {
        self.columns.get(&attr)
    }

    /// Whether stats exist for `attr` (used by the scan to avoid
    /// re-analyzing).
    pub fn has_column(&self, attr: u32) -> bool {
        self.columns.contains_key(&attr)
    }

    /// Install (or replace) statistics for one attribute.
    pub fn set_column(&mut self, attr: u32, stats: ColumnStats) {
        self.columns.insert(attr, stats);
    }

    /// Attributes with statistics.
    pub fn analyzed_attrs(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.columns.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Estimated number of groups produced by grouping on `attrs`:
    /// the product of per-attribute distinct counts, damped and capped by
    /// the row count (the classic optimizer heuristic that drives the
    /// hash-vs-sort aggregate choice in Figure 12).
    pub fn estimate_groups(&self, attrs: &[u32]) -> f64 {
        let rows = self.row_count.map_or(1e6, |r| r as f64).max(1.0);
        let mut groups = 1.0f64;
        for &a in attrs {
            let ndv = self.columns.get(&a).map_or(DEFAULT_NDV, |c| c.distinct());
            groups *= ndv.max(1.0);
            if groups > rows {
                return rows;
            }
        }
        groups.min(rows)
    }

    /// Drop all statistics (file invalidated).
    pub fn clear(&mut self) {
        self.columns.clear();
        self.row_count = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::StatsBuilder;
    use nodb_common::{DataType, Value};

    fn stats_with_ndv(vals: i32) -> ColumnStats {
        let mut b = StatsBuilder::new(DataType::Int32);
        for i in 0..5000 {
            b.offer(&Value::Int32(i % vals));
        }
        b.finalize(Some(5000.0))
    }

    #[test]
    fn group_estimate_multiplies_and_caps() {
        let mut t = TableStats::new();
        t.set_row_count(10_000);
        t.set_column(0, stats_with_ndv(3));
        t.set_column(1, stats_with_ndv(4));
        let g = t.estimate_groups(&[0, 1]);
        assert!((g - 12.0).abs() < 3.0, "g={g}");
        // Unknown attr uses the default NDV.
        let g = t.estimate_groups(&[0, 9]);
        assert!(g >= 3.0 * DEFAULT_NDV * 0.9);
        // Capped by row count.
        t.set_column(2, stats_with_ndv(5000));
        let g = t.estimate_groups(&[2, 1, 0]);
        assert!(g <= 10_000.0);
    }

    #[test]
    fn incremental_attribute_coverage() {
        let mut t = TableStats::new();
        assert!(!t.has_column(4));
        t.set_column(4, stats_with_ndv(10));
        assert!(t.has_column(4));
        assert_eq!(t.analyzed_attrs(), vec![4]);
        t.set_column(1, stats_with_ndv(10));
        assert_eq!(t.analyzed_attrs(), vec![1, 4]);
        t.clear();
        assert!(t.analyzed_attrs().is_empty());
        assert_eq!(t.row_count(), None);
    }
}
