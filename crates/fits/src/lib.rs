//! FITS binary-table substrate (paper §5.3, Figure 11).
//!
//! FITS (Flexible Image Transport System) is the standard archival format
//! in astronomy; the paper demonstrates that the NoDB philosophy applies
//! beyond CSV by querying FITS **binary tables** directly and comparing
//! against a procedural program written with NASA's CFITSIO library.
//!
//! This crate implements the relevant subset of the real format:
//! 2880-byte blocks, 80-character ASCII header cards, an empty primary
//! HDU, and one `BINTABLE` extension with big-endian fixed-width rows
//! (`TFORM` codes `J`, `K`, `E`, `D`, `nA`).
//!
//! * [`writer::FitsTableWriter`] / [`reader::FitsTable`] — produce and
//!   read files.
//! * [`procedural`] — the CFITSIO stand-in: a direct, loop-based API that
//!   re-scans the file for every aggregate (what an astronomer's custom C
//!   program does).
//! * [`provider::FitsProvider`] — the in-situ table provider for
//!   `nodb_core`'s engine. Binary rows sit at known offsets, so no
//!   positional map is needed ("each tuple and attribute is usually
//!   located in a well-known location"); instead **caching** carries the
//!   adaptation, exactly as §5.3 observes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod procedural;
pub mod provider;
pub mod reader;
pub mod types;
pub mod writer;

pub use procedural::ProceduralFits;
pub use provider::FitsProvider;
pub use reader::FitsTable;
pub use types::FitsType;
pub use writer::FitsTableWriter;

/// FITS block size (bytes).
pub const BLOCK: usize = 2880;
/// Header card size (bytes).
pub const CARD: usize = 80;
