//! Per-table runtime state: the auxiliary structures a raw file
//! accumulates across queries, plus observability counters.

use std::collections::HashMap;

use nodb_cache::{CacheConfig, RawCache};
use nodb_common::Result;
use nodb_posmap::{PosMapConfig, PositionalMap};
use nodb_stats::{StatsBuilder, TableStats};

use crate::config::NoDbConfig;

/// Cumulative work counters for one raw table. Benchmarks and tests use
/// these to verify *why* performance changes (e.g. the second query
/// tokenizes fewer fields), not just that it does.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Queries that scanned this table.
    pub scans: u64,
    /// Tuples emitted to query plans.
    pub rows_emitted: u64,
    /// Fields located by scanning characters (full or partial
    /// tokenization).
    pub fields_tokenized: u64,
    /// Fields located by jumping straight to a map position.
    pub fields_via_map: u64,
    /// Fields located by incremental parsing from a map anchor.
    pub fields_via_anchor: u64,
    /// Field values converted from ASCII to binary.
    pub fields_parsed: u64,
    /// Field values served from the binary cache.
    pub fields_from_cache: u64,
    /// Bytes of raw file consumed by sequential tokenization.
    pub bytes_tokenized: u64,
}

/// The adaptive state of one in-situ table.
pub struct RawTableRuntime {
    /// Positional map (also owns the end-of-line index, which the
    /// cache-only variant keeps).
    pub posmap: PositionalMap,
    /// Binary cache.
    pub cache: RawCache,
    /// On-the-fly statistics.
    pub stats: TableStats,
    /// In-progress statistics builders (attr → builder), finalized when a
    /// scan completes a full pass.
    pub stat_builders: HashMap<u32, StatsBuilder>,
    /// File length when the auxiliary structures were last valid (append
    /// / in-place-edit detection, §4.5).
    pub file_len_seen: u64,
    /// Work counters.
    pub metrics: ScanMetrics,
}

impl RawTableRuntime {
    /// Fresh runtime from the engine configuration.
    pub fn new(cfg: &NoDbConfig) -> RawTableRuntime {
        RawTableRuntime {
            posmap: PositionalMap::new(PosMapConfig {
                block_rows: cfg.posmap_block_rows,
                budget: cfg.posmap_budget,
                spill_dir: cfg.posmap_spill_dir.clone(),
            }),
            cache: RawCache::new(CacheConfig {
                budget: cfg.cache_budget,
                cost_weight: cfg.cache_cost_weight,
            }),
            stats: TableStats::new(),
            stat_builders: HashMap::new(),
            file_len_seen: 0,
            metrics: ScanMetrics::default(),
        }
    }

    /// React to the file's current length (§4.5): growth re-opens the
    /// end-of-line index for appends; shrinkage invalidates everything.
    pub fn observe_file_len(&mut self, len: u64) -> Result<()> {
        if len < self.file_len_seen {
            // In-place modification: auxiliary structures are stale.
            self.posmap.clear();
            self.cache.clear();
            self.stats.clear();
            self.stat_builders.clear();
        } else if len > self.file_len_seen && self.posmap.eol().is_complete() {
            self.posmap.eol_mut().reopen_for_append();
        }
        self.file_len_seen = len;
        Ok(())
    }
}
