//! Value domains from the TPC-H specification (§4.2.2-4.2.3).

/// Part type, syllable 1.
pub const TYPE_S1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Part type, syllable 2.
pub const TYPE_S2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Part type, syllable 3.
pub const TYPE_S3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container, syllable 1.
pub const CONTAINER_S1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Container, syllable 2.
pub const CONTAINER_S2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Market segments.
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// Order priorities.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Ship instructions.
pub const INSTRUCTIONS: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Ship modes.
pub const MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Nation names with their region keys (spec Appendix A).
pub const NATIONS: &[(&str, i32)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Region names.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Part-name word pool (spec's P_NAME list, abridged but large enough for
/// realistic distinct counts).
pub const PART_WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// Generic comment word pool.
pub const COMMENT_WORDS: &[&str] = &[
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "ironic",
    "final",
    "pending",
    "regular",
    "express",
    "special",
    "bold",
    "even",
    "silent",
    "unusual",
    "packages",
    "deposits",
    "requests",
    "accounts",
    "instructions",
    "theodolites",
    "platelets",
    "foxes",
    "pinto",
    "beans",
    "asymptotes",
    "dependencies",
    "excuses",
    "ideas",
    "sauternes",
    "sleep",
    "wake",
    "nag",
    "haggle",
    "cajole",
    "integrate",
    "boost",
    "detect",
    "among",
    "about",
    "above",
    "across",
    "after",
    "against",
];
