//! Workspace file discovery: every `.rs` file under the configured
//! roots, skipping build output and the linter's own seeded-violation
//! fixtures.

use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collect every `.rs` file under `root/<sub>` for each configured
/// subdirectory, as paths relative to `root`, sorted for deterministic
/// reports. Missing subdirectories are skipped (a fixture tree need not
/// mirror the full workspace layout).
pub fn rust_files(root: &Path, subdirs: &[&str]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for sub in subdirs {
        let dir = root.join(sub);
        if dir.is_dir() {
            visit(&dir, &mut out)?;
        }
    }
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    Ok(rel)
}

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<std::io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
