//! Engine-level unit tests: correctness of in-situ execution and the
//! adaptive behaviours the paper claims.

use std::path::PathBuf;

use nodb_common::{Schema, TempDir, Value};
use nodb_csv::{CsvOptions, MicroGen};

use crate::{AccessMode, NoDb, NoDbConfig};

fn micro_file(rows: usize, cols: usize) -> (TempDir, PathBuf, Schema) {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("micro.csv");
    let spec = MicroGen::default().rows(rows).cols(cols).seed(7);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    (td, p, schema)
}

fn engine_with(
    config: NoDbConfig,
    path: &std::path::Path,
    schema: &Schema,
    mode: AccessMode,
) -> NoDb {
    let mut db = NoDb::new(config).unwrap();
    db.register_csv("t", path, schema.clone(), CsvOptions::default(), mode)
        .unwrap();
    db
}

#[test]
fn engine_is_send_and_sync() {
    // `NoDb::query(&self)` is served concurrently from many threads;
    // this fails to compile if any table state loses thread safety.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NoDb>();
}

#[test]
fn first_query_without_loading() {
    let (_td, p, schema) = micro_file(300, 10);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let r = db
        .query("select c0, c5 from t where c2 < 500000000")
        .unwrap();
    assert!(!r.rows.is_empty());
    assert_eq!(r.schema.len(), 2);
    for row in &r.rows {
        assert_eq!(row.len(), 2);
    }
}

#[test]
fn all_variants_agree_with_external_baseline() {
    let (_td, p, schema) = micro_file(500, 12);
    let queries = [
        "select c0 from t",
        "select c1, c7 from t where c3 < 300000000",
        "select sum(c2), count(*), min(c4), max(c4), avg(c6) from t",
        "select c11 from t where c0 between 100000000 and 900000000",
        "select count(*) from t where c5 < 100000000 or c6 > 900000000",
    ];
    let configs: Vec<(&str, NoDbConfig)> = vec![
        ("pm+c", NoDbConfig::postgres_raw()),
        ("pm", NoDbConfig::pm_only()),
        ("c", NoDbConfig::cache_only()),
        ("baseline", NoDbConfig::baseline()),
    ];
    for q in queries {
        let reference = engine_with(
            NoDbConfig::baseline(),
            &p,
            &schema,
            AccessMode::ExternalFiles,
        )
        .query(q)
        .unwrap();
        for (label, cfg) in &configs {
            let db = engine_with(cfg.clone(), &p, &schema, AccessMode::InSitu);
            // Run twice: the second run exercises the map/cache paths.
            let first = db.query(q).unwrap();
            let second = db.query(q).unwrap();
            assert_eq!(first.rows, reference.rows, "{label} first run of `{q}`");
            assert_eq!(second.rows, reference.rows, "{label} second run of `{q}`");
        }
    }
}

#[test]
fn loaded_mode_agrees_and_requires_load() {
    let (_td, p, schema) = micro_file(400, 6);
    let mut db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::Loaded);
    // Querying before loading is an error mentioning the fix.
    let err = db.query("select c0 from t").unwrap_err().to_string();
    assert!(err.contains("load_table"), "{err}");
    let report = db.load_table("t").unwrap();
    assert_eq!(report.rows, 400);
    let loaded = db
        .query("select c0, c3 from t where c1 < 400000000")
        .unwrap();

    let insitu = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let expect = insitu
        .query("select c0, c3 from t where c1 < 400000000")
        .unwrap();
    assert_eq!(loaded.rows, expect.rows);
}

#[test]
fn second_query_does_less_tokenization_work() {
    let (_td, p, schema) = micro_file(2000, 20);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    db.query("select c10, c15 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    db.query("select c10, c15 from t").unwrap();
    let m2 = db.metrics("t").unwrap();
    let first_tokenized = m1.fields_tokenized;
    let second_tokenized = m2.fields_tokenized - m1.fields_tokenized;
    assert!(
        second_tokenized == 0,
        "second identical query should tokenize nothing \
         (first={first_tokenized}, second={second_tokenized})"
    );
    // Values came from the cache, not re-parsing.
    assert!(m2.fields_from_cache > 0);
    assert_eq!(
        m2.fields_parsed, m1.fields_parsed,
        "no re-conversion on the second query"
    );
}

#[test]
fn pm_only_uses_map_positions_on_second_query() {
    let (_td, p, schema) = micro_file(1000, 20);
    let db = engine_with(NoDbConfig::pm_only(), &p, &schema, AccessMode::InSitu);
    db.query("select c5, c12 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    assert_eq!(m1.fields_via_map, 0, "first query has no map yet");
    db.query("select c5, c12 from t").unwrap();
    let m2 = db.metrics("t").unwrap();
    assert!(
        m2.fields_via_map > 0,
        "second query must jump via map positions"
    );
    // Without the cache, values are re-parsed every time.
    assert!(m2.fields_parsed > m1.fields_parsed);
    assert_eq!(m2.fields_from_cache, 0);
}

#[test]
fn anchored_navigation_for_neighbouring_attribute() {
    let (_td, p, schema) = micro_file(800, 30);
    let db = engine_with(NoDbConfig::pm_only(), &p, &schema, AccessMode::InSitu);
    db.query("select c10 from t").unwrap();
    // c11 is not indexed, but c10 is: expect anchored navigation, not
    // full tokenization.
    db.query("select c11 from t").unwrap();
    let m = db.metrics("t").unwrap();
    assert!(
        m.fields_via_anchor > 0,
        "expected anchor-based incremental parsing: {m:?}"
    );
}

#[test]
fn baseline_mode_never_learns() {
    let (_td, p, schema) = micro_file(500, 10);
    let db = engine_with(
        NoDbConfig::baseline(),
        &p,
        &schema,
        AccessMode::ExternalFiles,
    );
    let a = db.query("select c2 from t").unwrap();
    let b = db.query("select c2 from t").unwrap();
    assert_eq!(a.rows, b.rows);
    // External tables expose no runtime to inspect.
    assert!(db.metrics("t").is_err());
}

#[test]
fn aux_info_reports_structures() {
    let (_td, p, schema) = micro_file(600, 8);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    db.query("select c1 from t where c0 < 500000000").unwrap();
    let info = db.aux_info("t").unwrap();
    assert!(info.posmap_pointers > 0);
    assert!(info.posmap_bytes > 0);
    assert!(info.cache_bytes > 0);
    assert!(info.stats_attrs >= 1, "WHERE attribute must get stats");
}

#[test]
fn stats_influence_plans_but_not_results() {
    let (_td, p, schema) = micro_file(1200, 6);
    // With stats.
    let with = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    with.query("select c0 from t").unwrap(); // collect stats
    let plan_with = with
        .plan("select c1, count(*) from t group by c1")
        .unwrap()
        .explain();
    // Without stats.
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.enable_stats = false;
    let without = engine_with(cfg, &p, &schema, AccessMode::InSitu);
    let plan_without = without
        .plan("select c1, count(*) from t group by c1")
        .unwrap()
        .explain();
    assert!(plan_with.contains("HashAggregate"), "{plan_with}");
    assert!(plan_without.contains("SortAggregate"), "{plan_without}");
    let a = with
        .query("select c1, count(*) from t group by c1 order by c1")
        .unwrap();
    let b = without
        .query("select c1, count(*) from t group by c1 order by c1")
        .unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn append_is_visible_without_reregistration() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("m.csv");
    let spec = MicroGen::default().rows(100).cols(4).seed(3);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let before = db.query("select count(*) from t").unwrap();
    assert_eq!(before.rows[0].get(0), &Value::Int64(100));
    spec.append_to(&p, 50).unwrap();
    let after = db.query("select count(*) from t").unwrap();
    assert_eq!(
        after.rows[0].get(0),
        &Value::Int64(150),
        "appended rows must be immediately visible (§4.5)"
    );
    // Aux structures for the old region still work.
    let r = db.query("select c0 from t where c1 < 500000000").unwrap();
    assert!(!r.rows.is_empty());
}

#[test]
fn append_mid_block_keeps_positions_correct() {
    // Regression: a sequential pass resuming mid-block (the appended
    // tail) must not insert a block-anchored chunk for rows it did not
    // start at, or later map jumps land on the wrong bytes.
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("m.csv");
    let spec = MicroGen::default().rows(100).cols(6).seed(9);
    spec.write_to(&p).unwrap();
    let schema = spec.schema();
    let db = engine_with(NoDbConfig::pm_only(), &p, &schema, AccessMode::InSitu);
    let q = "select c2, c4 from t";
    let before = db.query(q).unwrap(); // builds map for rows 0..100
    spec.append_to(&p, 30).unwrap();
    let grown = db.query(q).unwrap(); // mapped 0..100, sequential 100..130
    assert_eq!(grown.rows.len(), 130);
    assert_eq!(&grown.rows[..100], &before.rows[..]);
    // Third run reads rows 0..100 via map positions; values must be
    // unchanged (a mis-anchored chunk would corrupt them).
    let again = db.query(q).unwrap();
    assert_eq!(again.rows, grown.rows);
}

#[test]
fn in_place_edit_invalidates_aux() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("m.csv");
    std::fs::write(&p, "1,10\n2,20\n3,30\n").unwrap();
    let schema = Schema::parse("a int, b int").unwrap();
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let r = db.query("select b from t where a = 2").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int32(20));
    // Rewrite the file in place with different (shorter) content.
    std::fs::write(&p, "1,11\n2,22\n").unwrap();
    let r = db.query("select b from t where a = 2").unwrap();
    assert_eq!(
        r.rows[0].get(0),
        &Value::Int32(22),
        "stale aux must be dropped"
    );
}

#[test]
fn posmap_budget_is_respected_during_queries() {
    let (_td, p, schema) = micro_file(3000, 30);
    let mut cfg = NoDbConfig::pm_only();
    cfg.posmap_budget = Some(nodb_common::ByteSize::kb(32));
    cfg.posmap_block_rows = 512;
    let db = engine_with(cfg, &p, &schema, AccessMode::InSitu);
    for i in 0..6 {
        let c = i * 4;
        db.query(&format!("select c{c} from t")).unwrap();
        let info = db.aux_info("t").unwrap();
        assert!(
            info.posmap_bytes <= 32_000,
            "budget violated: {} bytes",
            info.posmap_bytes
        );
    }
}

#[test]
fn cache_budget_is_respected() {
    let (_td, p, schema) = micro_file(3000, 30);
    let mut cfg = NoDbConfig::cache_only();
    cfg.cache_budget = Some(nodb_common::ByteSize::kb(64));
    let db = engine_with(cfg, &p, &schema, AccessMode::InSitu);
    for i in 0..6 {
        let c = i * 4;
        db.query(&format!("select c{c} from t")).unwrap();
        let info = db.aux_info("t").unwrap();
        assert!(
            info.cache_bytes <= 64_000,
            "budget violated: {} bytes",
            info.cache_bytes
        );
    }
}

#[test]
fn count_star_after_indexing_reads_no_bytes() {
    let (_td, p, schema) = micro_file(1000, 5);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    db.query("select c0 from t").unwrap();
    let m1 = db.metrics("t").unwrap();
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(1000));
    let m2 = db.metrics("t").unwrap();
    assert_eq!(
        m2.bytes_tokenized, m1.bytes_tokenized,
        "row count must come from the EOL index"
    );
}

#[test]
fn drop_aux_resets_and_rebuilds() {
    let (_td, p, schema) = micro_file(300, 6);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    db.query("select c0 from t").unwrap();
    assert!(db.aux_info("t").unwrap().posmap_pointers > 0);
    db.drop_aux("t").unwrap();
    assert_eq!(db.aux_info("t").unwrap().posmap_pointers, 0);
    // Next query rebuilds from scratch and still answers correctly.
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(300));
}

#[test]
fn selective_parsing_skips_nonqualifying_select_attrs() {
    let (_td, p, schema) = micro_file(1000, 10);
    // Rewrite off: predicate pushdown would additionally test c1 on the
    // raw slice before the filter re-parses it for qualifying rows
    // (counted honestly in fields_parsed, proved in
    // tests/pushdown_equivalence.rs); this test pins the *selective
    // parsing* baseline the paper describes.
    let mut cfg = NoDbConfig::baseline();
    cfg.enable_rewrite = false;
    let db = engine_with(cfg, &p, &schema, AccessMode::InSitu);
    // ~10% selectivity filter: SELECT attribute c7 should be parsed only
    // for qualifying rows.
    db.query("select c7 from t where c1 < 100000000").unwrap();
    let m = db.metrics("t").unwrap();
    // c1 parsed for all rows; c7 only for qualifying.
    let qualifying = m.rows_emitted;
    assert_eq!(m.fields_parsed, 1000 + qualifying);
    assert!(qualifying < 300, "selectivity sanity: {qualifying}");
}

#[test]
fn register_errors() {
    let (_td, p, schema) = micro_file(10, 3);
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "t",
        &p,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    // Duplicate name.
    assert!(db
        .register_csv(
            "T",
            &p,
            schema.clone(),
            CsvOptions::default(),
            AccessMode::InSitu
        )
        .is_err());
    // Unknown table in query.
    assert!(db.query("select x from missing").is_err());
}

#[test]
fn header_rows_are_skipped_in_situ() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("h.csv");
    std::fs::write(&p, "a,b\n1,10\n2,20\n3,30\n").unwrap();
    let schema = Schema::parse("a int, b int").unwrap();
    let opts = CsvOptions {
        has_header: true,
        ..CsvOptions::default()
    };
    for mode in [AccessMode::InSitu, AccessMode::ExternalFiles] {
        for cfg in [
            NoDbConfig::postgres_raw(),
            NoDbConfig::pm_only(),
            NoDbConfig::cache_only(),
            NoDbConfig::baseline(),
        ] {
            let mut db = NoDb::new(cfg).unwrap();
            db.register_csv("t", &p, schema.clone(), opts, mode)
                .unwrap();
            // Twice: the second run exercises the mapped/cached paths.
            for _ in 0..2 {
                let r = db.query("select count(*), min(a), max(b) from t").unwrap();
                assert_eq!(r.rows[0].get(0), &Value::Int64(3), "{mode:?}");
                assert_eq!(r.rows[0].get(1), &Value::Int32(1));
                assert_eq!(r.rows[0].get(2), &Value::Int32(30));
                let r = db.query("select b from t where a = 2").unwrap();
                assert_eq!(r.rows[0].get(0), &Value::Int32(20));
            }
        }
    }
}

#[test]
fn header_skip_survives_appends_and_parallel_scans() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("h.csv");
    std::fs::write(&p, "a,b\n1,10\n2,20\n").unwrap();
    let schema = Schema::parse("a int, b int").unwrap();
    let opts = CsvOptions {
        has_header: true,
        ..CsvOptions::default()
    };
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.scan_threads = 4;
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", &p, schema, opts, AccessMode::InSitu)
        .unwrap();
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(2));
    // Appended rows are data rows (no second header).
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    std::io::Write::write_all(&mut f, b"3,30\n").unwrap();
    drop(f);
    let r = db.query("select sum(b) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(60));
}

#[test]
fn parallel_scan_matches_single_threaded() {
    let (_td, p, schema) = micro_file(2500, 12);
    let queries = [
        "select c0 from t",
        "select c1, c7 from t where c3 < 300000000",
        "select sum(c2), count(*), min(c4), max(c4) from t",
        "select count(*) from t",
    ];
    for threads in [2usize, 3, 8] {
        let reference = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.scan_threads = threads;
        let parallel = engine_with(cfg, &p, &schema, AccessMode::InSitu);
        for q in queries {
            // Cold and warm runs both agree.
            let a1 = reference.query(q).unwrap();
            let b1 = parallel.query(q).unwrap();
            assert_eq!(a1.rows, b1.rows, "{threads} threads, cold `{q}`");
            let a2 = reference.query(q).unwrap();
            let b2 = parallel.query(q).unwrap();
            assert_eq!(a2.rows, b2.rows, "{threads} threads, warm `{q}`");
        }
        // Same tokenization/parsing work, block-for-block aux parity.
        let mr = reference.metrics("t").unwrap();
        let mp = parallel.metrics("t").unwrap();
        assert_eq!(mr, mp, "{threads} threads: metrics diverged");
        let ar = reference.aux_info("t").unwrap();
        let ap = parallel.aux_info("t").unwrap();
        assert_eq!(ar.posmap_pointers, ap.posmap_pointers);
        assert_eq!(ar.cache_bytes, ap.cache_bytes);
    }
}

#[test]
fn io_backends_are_bit_identical() {
    use nodb_common::IoBackend;

    let (_td, p, schema) = micro_file(2500, 12);
    let queries = [
        "select c0 from t",
        "select c1, c7 from t where c3 < 300000000",
        "select sum(c2), count(*), min(c4), max(c4) from t",
        "select count(*) from t",
    ];
    for threads in [1usize, 4] {
        let mut rcfg = NoDbConfig::postgres_raw();
        rcfg.scan_threads = threads;
        rcfg.io_backend = IoBackend::Read;
        let read = engine_with(rcfg, &p, &schema, AccessMode::InSitu);
        let mut mcfg = NoDbConfig::postgres_raw();
        mcfg.scan_threads = threads;
        mcfg.io_backend = IoBackend::Mmap;
        let mmap = engine_with(mcfg, &p, &schema, AccessMode::InSitu);
        for q in queries {
            // Cold and warm runs both agree.
            let a1 = read.query(q).unwrap();
            let b1 = mmap.query(q).unwrap();
            assert_eq!(a1.rows, b1.rows, "{threads} threads, cold `{q}`");
            let a2 = read.query(q).unwrap();
            let b2 = mmap.query(q).unwrap();
            assert_eq!(a2.rows, b2.rows, "{threads} threads, warm `{q}`");
        }
        // Identical tokenization/parsing/map work and aux footprint: the
        // backend changes how bytes arrive, never what the scan does.
        let mr = read.metrics("t").unwrap();
        let mm = mmap.metrics("t").unwrap();
        assert_eq!(mr, mm, "{threads} threads: metrics diverged");
        let ar = read.aux_info("t").unwrap();
        let am = mmap.aux_info("t").unwrap();
        assert_eq!(ar.posmap_pointers, am.posmap_pointers);
        assert_eq!(ar.cache_bytes, am.cache_bytes);
    }
}

#[test]
fn mmap_backend_handles_empty_and_growing_files() {
    use nodb_common::IoBackend;

    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("grow.csv");
    std::fs::write(&p, "").unwrap();
    let schema = Schema::parse("a int, b int").unwrap();
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.io_backend = IoBackend::Mmap;
    cfg.scan_threads = 4;
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", &p, schema, CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    // Zero-length file: mmap degrades to read, the scan sees no rows.
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(0));
    // Appended rows are picked up by a fresh mapping of the longer file.
    let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
    std::io::Write::write_all(&mut f, b"1,10\n2,20\n").unwrap();
    drop(f);
    let r = db.query("select sum(b) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(30));
}

#[test]
fn idle_time_prebuilds_structures() {
    use crate::IdleFocus;
    use std::time::Duration;

    let (_td, p, schema) = micro_file(2000, 20);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    // Generous budget: the whole file gets covered.
    let report = db
        .exploit_idle_time("t", Duration::from_secs(30), IdleFocus::AllAttributes)
        .unwrap();
    assert!(report.completed);
    assert_eq!(report.rows_processed, 2000);
    assert!(report.pointers_added > 0);
    assert!(report.cache_bytes_added > 0);
    // The first user query now behaves like a warm one: nothing parsed.
    let m_before = db.metrics("t").unwrap();
    db.query("select c3, c17 from t").unwrap();
    let m_after = db.metrics("t").unwrap();
    assert_eq!(
        m_after.fields_parsed, m_before.fields_parsed,
        "idle work must make the first query cache-resident"
    );
}

#[test]
fn idle_time_respects_zero_budget() {
    use crate::IdleFocus;
    use std::time::Duration;

    let (_td, p, schema) = micro_file(5000, 30);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let report = db
        .exploit_idle_time("t", Duration::ZERO, IdleFocus::AllAttributes)
        .unwrap();
    assert!(!report.completed);
    assert!(report.rows_processed < 5000);
    // Partial structures are valid: queries still answer correctly.
    let r = db.query("select count(*) from t").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(5000));
}

#[test]
fn idle_time_focuses_on_workload_attributes() {
    use crate::IdleFocus;
    use std::time::Duration;

    let (_td, p, schema) = micro_file(1500, 30);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    // Teach the engine a workload (stats on c2 only).
    db.query("select c2 from t").unwrap();
    let before = db.aux_info("t").unwrap();
    db.exploit_idle_time("t", Duration::from_secs(30), IdleFocus::WorkloadAttributes)
        .unwrap();
    let after = db.aux_info("t").unwrap();
    // c2 was already fully covered by the query, so focused idle work
    // adds nothing beyond what the workload built.
    assert_eq!(after.cache_bytes, before.cache_bytes);
    // Loaded tables refuse.
    let mut loaded = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    loaded
        .register_csv("t", &p, schema, CsvOptions::default(), AccessMode::Loaded)
        .unwrap();
    assert!(loaded
        .exploit_idle_time("t", Duration::from_secs(1), IdleFocus::AllAttributes)
        .is_err());
}

#[test]
fn distinct_and_having_work_end_to_end() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("m.csv");
    std::fs::write(
        &p,
        "a,1\na,2\nb,3\nb,4\nb,5\nc,6\na,1\n", // duplicate (a,1) row
    )
    .unwrap();
    let schema = Schema::parse("k text, v int").unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv("t", &p, schema, CsvOptions::default(), AccessMode::InSitu)
        .unwrap();

    // DISTINCT over whole rows.
    let r = db
        .query("select distinct k, v from t order by k, v")
        .unwrap();
    assert_eq!(r.rows.len(), 6, "duplicate (a,1) collapsed");
    // DISTINCT over a single column.
    let r = db.query("select distinct k from t order by k").unwrap();
    assert_eq!(
        r.rows
            .iter()
            .map(|x| x.get(0).as_str().unwrap().to_string())
            .collect::<Vec<_>>(),
        vec!["a", "b", "c"]
    );

    // HAVING on an aggregate that is also projected.
    let r = db
        .query("select k, count(*) n from t group by k having count(*) >= 2 order by k")
        .unwrap();
    assert_eq!(r.rows.len(), 2); // a (3), b (3)

    // HAVING on an aggregate that is NOT in the select list.
    let r = db
        .query("select k from t group by k having sum(v) > 5 order by k")
        .unwrap();
    // Sums: a = 1+2+1 = 4, b = 12, c = 6 -> only b and c qualify.
    let names: Vec<&str> = r.rows.iter().map(|x| x.get(0).as_str().unwrap()).collect();
    assert_eq!(names, vec!["b", "c"]);

    // HAVING mixed with group key comparison.
    let r = db
        .query("select k, sum(v) s from t group by k having k <> 'c' order by s desc")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "b");
}

// ----- session API: prepared statements, cursors, drop_table ------------

#[test]
fn prepared_statement_matches_literal_sql() {
    let (_td, p, schema) = micro_file(600, 8);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let stmt = db
        .prepare("select c0, c5 from t where c2 < ? order by c0")
        .unwrap();
    assert_eq!(stmt.param_count(), 1);
    assert_eq!(stmt.schema().len(), 2);
    for bound in [100_000_000i64, 500_000_000, 900_000_000] {
        let prepared = stmt.query(&crate::Params::new().bind(bound)).unwrap();
        let literal = db
            .query(&format!(
                "select c0, c5 from t where c2 < {bound} order by c0"
            ))
            .unwrap();
        assert_eq!(prepared.rows, literal.rows, "bound = {bound}");
        assert_eq!(prepared.schema.types(), literal.schema.types());
    }
}

#[test]
fn prepared_statement_validates_parameters() {
    let (_td, p, schema) = micro_file(50, 4);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let stmt = db.prepare("select c0 from t where c1 < ?").unwrap();
    // Wrong arity, both directions.
    assert!(stmt.execute(&crate::Params::new()).is_err());
    assert!(stmt
        .execute(&crate::Params::new().bind(1i64).bind(2i64))
        .is_err());
    // Type mismatch against the inferred (int) type.
    let err = stmt
        .execute(&crate::Params::new().bind("not a number"))
        .unwrap_err()
        .to_string();
    assert!(err.contains("parameter $1"), "{err}");
    // A statement with placeholders cannot run through plain query().
    assert!(db.query("select c0 from t where c1 < ?").is_err());
    // Gapped $N numbering is rejected at prepare time.
    assert!(db.prepare("select c0 from t where c1 < $2").is_err());
}

#[test]
fn prepared_date_parameters_accept_text() {
    let td = TempDir::new("nodb-core-test").unwrap();
    let p = td.file("dates.csv");
    std::fs::write(&p, "2026-01-01,5\n2026-02-01,7\n2026-03-01,9\n").unwrap();
    let schema = Schema::parse("day date, v int").unwrap();
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv("t", &p, schema, CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    let stmt = db.prepare("select v from t where day >= ?").unwrap();
    // Text coerces to a date (exactly what `date '…'` would inline)...
    let r = stmt
        .query(&crate::Params::new().bind("2026-02-01"))
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    // ...and malformed text fails loudly at execute time.
    assert!(stmt
        .query(&crate::Params::new().bind("02/01/2026"))
        .is_err());
}

#[test]
fn query_stream_is_lazy_and_keeps_partial_aux() {
    let (_td, p, schema) = micro_file(20_000, 6);
    let file_len = std::fs::metadata(&p).unwrap().len();
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);

    // Pull three rows, then drop the cursor mid-scan.
    let mut cursor = db.query_stream("select c0, c1 from t").unwrap();
    assert_eq!(cursor.columns(), vec!["c0", "c1"]);
    for _ in 0..3 {
        cursor.next().unwrap().unwrap();
    }
    drop(cursor);

    // The scan stopped after its first block(s): a small fraction of
    // the file was tokenized, and the aux structures cover exactly the
    // consumed prefix — which still serves the next query.
    let m = db.metrics("t").unwrap();
    assert!(
        m.bytes_tokenized < file_len / 2,
        "tokenized {} of {file_len} bytes",
        m.bytes_tokenized
    );
    let aux = db.aux_info("t").unwrap();
    assert!(aux.posmap_pointers > 0, "partial scan built no positions");
    let full = db.query("select count(*) from t").unwrap();
    assert_eq!(full.rows[0].get(0), &Value::Int64(20_000));
}

#[test]
fn statement_explain_reflects_current_stats() {
    let (_td, p, schema) = micro_file(2_000, 4);
    let db = engine_with(NoDbConfig::postgres_raw(), &p, &schema, AccessMode::InSitu);
    let stmt = db.prepare("select c0 from t where c1 < ?").unwrap();
    let params = crate::Params::new().bind(500_000_000i64);
    let cold = stmt.explain(&params).unwrap().render();
    // No statistics yet: the default 1000-row table guess times the
    // default inequality selectivity.
    assert!(cold.contains("~333 rows"), "default estimate: {cold}");
    // Execute once: the scan collects statistics on the fly.
    stmt.query(&params).unwrap();
    let warm = stmt.explain(&params).unwrap().render();
    assert!(
        !warm.contains("~333 rows") && warm.contains("Scan t"),
        "estimates must pick up adaptive stats: {warm}"
    );
}

#[test]
fn drop_table_releases_and_frees_the_name() {
    let (_td, p, schema) = micro_file(500, 6);
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "t",
        &p,
        schema.clone(),
        CsvOptions::default(),
        AccessMode::InSitu,
    )
    .unwrap();
    db.query("select c0 from t").unwrap();
    assert!(db.aux_info("t").unwrap().posmap_pointers > 0);

    db.drop_table("T").unwrap(); // names are case-insensitive
    assert!(db.query("select c0 from t").is_err());
    assert!(db.metrics("t").is_err());
    assert!(db.drop_table("t").is_err(), "double drop is an error");

    // The name is free again, and the new table starts cold.
    db.register_csv("t", &p, schema, CsvOptions::default(), AccessMode::InSitu)
        .unwrap();
    assert_eq!(db.aux_info("t").unwrap().posmap_pointers, 0);
    assert_eq!(db.query("select count(*) from t").unwrap().rows.len(), 1);
}

#[test]
fn drop_table_removes_loaded_heap_storage() {
    let (_td, p, schema) = micro_file(200, 4);
    let data_td = TempDir::new("nodb-core-heap").unwrap();
    let mut cfg = NoDbConfig::postgres_raw();
    cfg.data_dir = Some(data_td.path().to_path_buf());
    let mut db = NoDb::new(cfg).unwrap();
    db.register_csv("t", &p, schema, CsvOptions::default(), AccessMode::Loaded)
        .unwrap();
    db.load_table("t").unwrap();
    let heap = data_td.path().join("heap").join("t.heap");
    let overflow = data_td.path().join("heap").join("t.ovf");
    assert!(heap.exists());
    assert!(overflow.exists(), "loader always creates the overflow file");
    db.drop_table("t").unwrap();
    assert!(!heap.exists(), "heap file must be deleted on drop");
    assert!(!overflow.exists(), "overflow file must be deleted on drop");
    assert!(db.query("select c0 from t").is_err());
}
