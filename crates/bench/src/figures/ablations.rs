//! Ablations of the design choices DESIGN.md calls out. Not figures from
//! the paper — these quantify *why* the mechanisms are built the way they
//! are.

use std::path::Path;

use nodb_common::{ByteSize, Result};
use nodb_core::{AccessMode, NoDb, NoDbConfig};
use nodb_csv::CsvOptions;
use nodb_tpch::TpchGen;

use crate::data::{micro_file, tpch_dir};
use crate::figures::{micro_engine, random_projections};
use crate::report::{secs, Report};
use crate::{time, Scale};

/// Ablation 1: positional-map block size (the paper sizes chunks to "fit
/// comfortably in the CPU caches"). Sweeps block_rows and reports warm
/// query time — too small wastes directory overhead, too large wastes
/// memory traffic per access.
pub fn abl_block_size(scale: Scale, out: &Path) -> Result<()> {
    let (path, schema) = micro_file(scale.micro_rows(), scale.micro_cols(), None)?;
    let queries = random_projections(scale.micro_cols(), 10, 5, 77);
    let mut report = Report::new(
        "abl_block_size",
        "positional-map block size vs warm query time",
        &["block_rows", "avg_warm_s", "map_bytes"],
        out,
    );
    for block_rows in [256usize, 1024, 4096, 16384] {
        let mut cfg = NoDbConfig::pm_only();
        cfg.posmap_block_rows = block_rows;
        cfg.enable_stats = false;
        let db = micro_engine(cfg, &path, &schema, AccessMode::InSitu);
        for q in &queries {
            db.query(q).expect("warm");
        }
        let (_, total) = time(|| {
            for q in &queries {
                db.query(q).expect("query");
            }
        });
        let info = db.aux_info("t").expect("aux");
        report.row(&[
            block_rows.to_string(),
            secs(total / queries.len() as f64),
            info.posmap_bytes.to_string(),
        ]);
    }
    report.finish()?;
    Ok(())
}

/// Ablation 2: conversion-cost-aware cache eviction (§4.3: "the cache
/// always gives priority to attributes more costly to convert") vs plain
/// LRU. Workload: touch expensive numeric columns, flood the cache with
/// cheap text columns, then re-touch the numerics and count re-parses.
pub fn abl_eviction(scale: Scale, out: &Path) -> Result<()> {
    let dir = tpch_dir(scale.tpch_sf())?;
    let mut report = Report::new(
        "abl_eviction",
        "cache eviction policy: re-parse work after text flood",
        &["policy", "reparsed_fields", "requery_s"],
        out,
    );
    // Budget sized to hold the three numeric columns (~8 MB at SF 0.05)
    // plus part of one text column, so the text flood *must* evict
    // something; the weight makes cost protection span several queries'
    // worth of cache operations.
    for (policy, cost_weight) in [("plain_lru", 0u64), ("cost_aware", 5000)] {
        let mut cfg = NoDbConfig::postgres_raw();
        cfg.enable_stats = false;
        cfg.cache_budget = Some(ByteSize::mb(12));
        // The knob under test:
        // (cost_weight is applied inside nodb-cache; NoDbConfig carries
        // the default, so construct the runtime through the config's
        // budget and vary the weight via environment of the cache —
        // exposed through NoDbConfig in lib.rs.)
        cfg.cache_cost_weight = cost_weight;
        let mut db = NoDb::new(cfg).expect("engine");
        db.register_csv(
            "lineitem",
            &dir.join("lineitem.tbl"),
            TpchGen::schema("lineitem").expect("schema"),
            CsvOptions::pipe(),
            AccessMode::InSitu,
        )
        .expect("register");

        // 1. Touch the expensive numeric columns.
        db.query("select sum(l_extendedprice), sum(l_discount), sum(l_tax) from lineitem")
            .expect("numerics");
        // 2. Flood with cheap text columns.
        for col in ["l_comment", "l_shipinstruct", "l_shipmode", "l_returnflag"] {
            db.query(&format!("select max({col}) from lineitem"))
                .expect("texts");
        }
        // 3. Re-touch the numerics; count conversions forced by eviction.
        let before = db.metrics("lineitem").expect("m").fields_parsed;
        let (_, t) = time(|| {
            db.query("select sum(l_extendedprice), sum(l_discount), sum(l_tax) from lineitem")
                .expect("requery");
        });
        let reparsed = db.metrics("lineitem").expect("m").fields_parsed - before;
        report.row(&[policy.to_string(), reparsed.to_string(), secs(t)]);
    }
    report.finish()?;
    Ok(())
}

/// Ablation 3: incremental (anchored) parsing distance. After indexing a
/// prefix of attributes, querying an attribute `d` positions past the
/// anchor costs `O(d)` tokenization per tuple — the reason the map keeps
/// combinations the workload actually uses.
pub fn abl_anchor_distance(scale: Scale, out: &Path) -> Result<()> {
    let (path, schema) = micro_file(scale.micro_rows(), scale.micro_cols(), None)?;
    let anchor = 10usize;
    let mut report = Report::new(
        "abl_anchor_distance",
        "anchored navigation: query time vs distance from nearest indexed attribute",
        &["distance", "query_s", "fields_via_anchor"],
        out,
    );
    let max_d = scale.micro_cols() - anchor - 1;
    for d in [1usize, 4, 16, 48] {
        let d = d.min(max_d);
        let mut cfg = NoDbConfig::pm_only();
        cfg.enable_stats = false;
        let db = micro_engine(cfg, &path, &schema, AccessMode::InSitu);
        // Index the prefix 0..=anchor.
        db.query(&format!("select c{anchor} from t"))
            .expect("prefix");
        let (_, t) = time(|| {
            db.query(&format!("select c{} from t", anchor + d))
                .expect("anchored");
        });
        let m = db.metrics("t").expect("m");
        report.row(&[d.to_string(), secs(t), m.fields_via_anchor.to_string()]);
    }
    report.finish()?;
    Ok(())
}
