//! SWAR (SIMD-within-a-register) byte scanning.
//!
//! The tokenizers' inner loops — find the next `\n`, the next delimiter,
//! the next `"`/`\` — dominate cold-scan cost (NoDB §4.1: raw-file query
//! cost is tokenizing + parsing). The build environment has no crates.io
//! access, so instead of `memchr` these helpers hand-roll the classic
//! `u64` word-at-a-time tricks: broadcast the needle into every byte lane,
//! XOR so matches become zero bytes, then extract a per-byte match mask.
//!
//! The mask formula is the *exact* zero-byte test
//!
//! ```text
//! zero_bytes(x) = !((x | 0x80..80) - 0x01..01 | x) & 0x80..80
//! ```
//!
//! Every byte of `x | HI` is ≥ 0x80, so subtracting `0x01` per byte never
//! borrows across lanes; bit 7 of a lane survives the `!(.. | x)` only
//! when that byte of `x` is zero. Unlike the cheaper
//! `(x - LO) & !x & HI` variant there are no false positives in lanes
//! above the first match, which makes the mask safe for counting and for
//! popping *every* match with `trailing_zeros`, not just the first.
//!
//! Words are loaded with [`u64::from_le_bytes`], so lane order matches
//! byte order regardless of host endianness and the first match in memory
//! is the lowest set bit of the mask.
//!
//! Everything here is safe Rust and branch-light; callers keep their
//! byte-exact semantics (these are drop-in replacements for
//! `iter().position(..)` loops, proven equivalent by proptests here and
//! in the tokenizer crates).

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Load the 8 bytes at `bytes[i..i + 8]` as a little-endian word.
#[inline(always)]
fn word_at(bytes: &[u8], i: usize) -> u64 {
    // The slice-to-array conversion compiles to a plain 8-byte load once
    // the caller's `i + 8 <= len` bound check is in scope.
    u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8-byte slice"))
}

/// Exact per-byte zero test: bit 7 of lane `k` is set iff byte `k` of
/// `x` is zero. No false positives in any lane (see module docs).
#[inline(always)]
fn zero_bytes(x: u64) -> u64 {
    !((x | HI).wrapping_sub(LO) | x) & HI
}

/// Broadcast a byte into all eight lanes.
#[inline(always)]
fn broadcast(b: u8) -> u64 {
    u64::from(b) * LO
}

/// Per-byte match mask of `needle` (pre-broadcast) within a word.
#[inline(always)]
fn eq_mask(word: u64, broadcast_needle: u64) -> u64 {
    zero_bytes(word ^ broadcast_needle)
}

/// Index of the first match in a word's mask (0..8).
#[inline(always)]
fn first_lane(mask: u64) -> usize {
    (mask.trailing_zeros() >> 3) as usize
}

/// Offset of the first occurrence of `needle` in `haystack`.
///
/// Drop-in for `haystack.iter().position(|&b| b == needle)`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let n = haystack.len();
    let bcast = broadcast(needle);
    let mut i = 0;
    while i + 8 <= n {
        let mask = eq_mask(word_at(haystack, i), bcast);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    while i < n {
        if haystack[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Offset of the first occurrence of *either* `a` or `b` in `haystack`.
///
/// The JSON string scanner uses this to jump to the next `"` or `\` in
/// one pass.
#[inline]
pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let n = haystack.len();
    let (ba, bb) = (broadcast(a), broadcast(b));
    let mut i = 0;
    while i + 8 <= n {
        let w = word_at(haystack, i);
        let mask = eq_mask(w, ba) | eq_mask(w, bb);
        if mask != 0 {
            return Some(i + first_lane(mask));
        }
        i += 8;
    }
    while i < n {
        if haystack[i] == a || haystack[i] == b {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Number of occurrences of `needle` in `haystack`.
///
/// Drop-in for `haystack.iter().filter(|&&b| b == needle).count()`: each
/// match contributes exactly one set bit (lane bit 7) to the word mask,
/// so a popcount per word counts all eight lanes at once.
#[inline]
pub fn count_byte(haystack: &[u8], needle: u8) -> usize {
    let n = haystack.len();
    let bcast = broadcast(needle);
    let mut count = 0usize;
    let mut i = 0;
    while i + 8 <= n {
        count += eq_mask(word_at(haystack, i), bcast).count_ones() as usize;
        i += 8;
    }
    while i < n {
        count += usize::from(haystack[i] == needle);
        i += 1;
    }
    count
}

/// Offset of the *last* occurrence of `needle` in `haystack`.
///
/// Drop-in for `haystack.iter().rposition(|&b| b == needle)`; backward
/// incremental parsing (§4.2) walks lines right-to-left with this.
#[inline]
pub fn rfind_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let n = haystack.len();
    let bcast = broadcast(needle);
    // Scalar tail first (the bytes past the last full word), then whole
    // words right-to-left using leading_zeros to pick the highest lane.
    let words_end = n - (n % 8);
    let mut i = n;
    while i > words_end {
        i -= 1;
        if haystack[i] == needle {
            return Some(i);
        }
    }
    while i >= 8 {
        i -= 8;
        let mask = eq_mask(word_at(haystack, i), bcast);
        if mask != 0 {
            return Some(i + 7 - (mask.leading_zeros() >> 3) as usize);
        }
    }
    None
}

/// Iterator over every offset of `needle` in `haystack`, in order.
///
/// One word-load per 8 bytes; multiple matches inside a word pop from the
/// saved mask without reloading. The tokenizer's delimiter loop is this
/// iterator plus a push per match.
#[derive(Debug, Clone)]
pub struct ByteFinder<'a> {
    haystack: &'a [u8],
    bcast: u64,
    needle: u8,
    /// Start of the word the current `mask` was loaded from.
    word_base: usize,
    /// Remaining match bits of the word at `word_base`.
    mask: u64,
    /// Next unexamined offset (always ≥ `word_base + 8` once a word has
    /// been consumed).
    next: usize,
}

impl<'a> ByteFinder<'a> {
    /// Scan `haystack` for `needle`.
    pub fn new(haystack: &'a [u8], needle: u8) -> ByteFinder<'a> {
        ByteFinder {
            haystack,
            bcast: broadcast(needle),
            needle,
            word_base: 0,
            mask: 0,
            next: 0,
        }
    }
}

impl Iterator for ByteFinder<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.mask != 0 {
            let lane = first_lane(self.mask);
            self.mask &= self.mask - 1;
            return Some(self.word_base + lane);
        }
        let n = self.haystack.len();
        while self.next + 8 <= n {
            let mask = eq_mask(word_at(self.haystack, self.next), self.bcast);
            self.word_base = self.next;
            self.next += 8;
            if mask != 0 {
                self.mask = mask & (mask - 1);
                return Some(self.word_base + first_lane(mask));
            }
        }
        while self.next < n {
            let i = self.next;
            self.next += 1;
            if self.haystack[i] == self.needle {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn scalar_find(hay: &[u8], needle: u8) -> Option<usize> {
        hay.iter().position(|&b| b == needle)
    }

    #[test]
    fn find_byte_matches_scalar_on_edges() {
        assert_eq!(find_byte(b"", b'x'), None);
        assert_eq!(find_byte(b"x", b'x'), Some(0));
        assert_eq!(find_byte(b"abcdefg", b'g'), Some(6));
        assert_eq!(find_byte(b"abcdefgh", b'h'), Some(7));
        assert_eq!(find_byte(b"abcdefghi", b'i'), Some(8));
        assert_eq!(find_byte(b"aaaaaaaaaaaaaaaa", b'b'), None);
        // High-bit bytes must not trip the mask (the exact-formula case).
        assert_eq!(find_byte(&[0x80; 16], 0x00), None);
        assert_eq!(find_byte(&[0xff, 0x80, 0x7f, 0x00], 0x00), Some(3));
    }

    #[test]
    fn find_byte2_picks_earliest_of_either() {
        assert_eq!(find_byte2(b"hello\\world\"x", b'"', b'\\'), Some(5));
        assert_eq!(find_byte2(b"hello\"world\\x", b'"', b'\\'), Some(5));
        assert_eq!(find_byte2(b"plain text here!", b'"', b'\\'), None);
        assert_eq!(find_byte2(b"", b'"', b'\\'), None);
    }

    #[test]
    fn count_and_rfind_match_scalar() {
        let hay = b"a,b,,cc,dddd,e,\xff,";
        assert_eq!(
            count_byte(hay, b','),
            hay.iter().filter(|&&b| b == b',').count()
        );
        assert_eq!(rfind_byte(hay, b','), hay.iter().rposition(|&b| b == b','));
        assert_eq!(rfind_byte(b"", b','), None);
        assert_eq!(rfind_byte(b",", b','), Some(0));
    }

    #[test]
    fn finder_yields_every_match_in_order() {
        let hay = b",,aa,b,,dddd,e,,,x";
        let got: Vec<usize> = ByteFinder::new(hay, b',').collect();
        let want: Vec<usize> = hay
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b',')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    proptest! {
        /// SWAR find == scalar find over arbitrary bytes (all 256 values,
        /// lengths straddling word boundaries).
        #[test]
        fn find_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..64), needle in any::<u8>()) {
            prop_assert_eq!(find_byte(&hay, needle), scalar_find(&hay, needle));
        }

        #[test]
        fn find2_matches_scalar(
            hay in proptest::collection::vec(any::<u8>(), 0..64),
            a in any::<u8>(),
            b in any::<u8>(),
        ) {
            let want = hay.iter().position(|&x| x == a || x == b);
            prop_assert_eq!(find_byte2(&hay, a, b), want);
        }

    }

    proptest! {
        #[test]
        fn count_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..64), needle in any::<u8>()) {
            prop_assert_eq!(count_byte(&hay, needle), hay.iter().filter(|&&b| b == needle).count());
        }

        #[test]
        fn rfind_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..64), needle in any::<u8>()) {
            prop_assert_eq!(rfind_byte(&hay, needle), hay.iter().rposition(|&b| b == needle));
        }

        #[test]
        fn finder_matches_scalar(hay in proptest::collection::vec(any::<u8>(), 0..64), needle in any::<u8>()) {
            let got: Vec<usize> = ByteFinder::new(&hay, needle).collect();
            let want: Vec<usize> = hay
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == needle)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(got, want);
        }
    }
}
