//! Self-test: the committed allowlists must match the live tree. The
//! workspace lints clean as-is, every unsafe site is audited, and
//! deleting *any* entry from `analyze/unsafe_audit.toml` makes the run
//! fail — the ledger is load-bearing, not decorative.

use std::path::{Path, PathBuf};

use nodb_analyze::config::Config;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn live_tree_lints_clean() {
    let cfg = Config::for_workspace(&workspace_root());
    let report = nodb_analyze::run(&cfg, &[]).expect("lint run");
    assert!(
        report.is_clean(),
        "the workspace has unwaived lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_unsafe_site_is_audited() {
    let cfg = Config::for_workspace(&workspace_root());
    let templates = nodb_analyze::unsafe_entry_templates(&cfg).expect("scan");
    assert!(
        templates.is_empty(),
        "unaudited unsafe sites need entries in analyze/unsafe_audit.toml:\n{templates}"
    );
}

#[test]
fn deleting_any_audit_entry_fails_the_run() {
    let cfg = Config::for_workspace(&workspace_root());
    let files = nodb_analyze::load_sources(&cfg).expect("sources");
    let audit = nodb_analyze::load_audit(&cfg.root.join(&cfg.audit_path)).expect("audit");
    assert!(
        !audit.is_empty(),
        "the audit ledger is empty — the deletion guarantee is vacuous"
    );
    for removed in 0..audit.len() {
        let mut truncated = audit.clone();
        let gone = truncated.remove(removed);
        let findings = nodb_analyze::lints::unsafe_audit::run(
            &files,
            &truncated,
            &cfg.audit_path.to_string_lossy(),
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("unaudited") && f.message.contains(&gone.hash)),
            "removing the entry for {} ({}) did not fail the unsafe arm",
            gone.file,
            gone.hash
        );
    }
}

#[test]
fn every_waiver_is_justified_and_live() {
    let cfg = Config::for_workspace(&workspace_root());
    let report = nodb_analyze::run(&cfg, &[]).expect("lint run");
    // `run` already turns empty-justification and stale waivers into
    // findings; a clean report plus at least one applied waiver proves
    // the machinery ran against the committed file.
    assert!(report.is_clean());
    for (f, why) in &report.waived {
        assert!(!why.trim().is_empty(), "unjustified waiver applied to {f}");
    }
}
