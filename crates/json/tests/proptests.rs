//! Property tests for the JSONL substrate.
//!
//! 1. **Round-trip**: generated `Value` rows → `JsonlWriter` → tokenizer →
//!    values, over escapes, unicode, nulls (explicit and omitted keys),
//!    CRLF line endings and missing trailing newlines.
//! 2. **Chunking**: `nodb_csv::split_line_aligned` — the format-agnostic
//!    line splitter behind parallel cold scans — partitions JSONL bodies
//!    into exactly-covering, record-aligned chunks (the JSONL mirror of
//!    the CSV chunking proptest).
//! 3. **I/O-backend parity**: the `mmap` and buffered-`read` substrates
//!    feed the tokenizer identical record bytes, key positions and chunk
//!    coverage (the JSONL half of the ISSUE 4 differential proptests).

use proptest::prelude::*;

use nodb_common::{ByteSource, DataType, IoBackend, LineFormat, Row, Schema, Value};
use nodb_csv::lines::{split_line_aligned, split_line_aligned_src, LineReader};
use nodb_json::{JsonFormat, JsonlOptions, JsonlWriter};

const DTYPES: [DataType; 4] = [
    DataType::Int32,
    DataType::Text,
    DataType::Bool,
    DataType::Float64,
];

fn schema() -> Schema {
    Schema::parse("i int, t text, b bool, f double").unwrap()
}

type GenRow = (Option<i32>, Option<Vec<char>>, Option<bool>, Option<i32>);

/// What the tokenizer must give back for a generated row. The single
/// intentional normalization: an empty string reads as NULL (exactly
/// like the empty CSV field it corresponds to).
fn expected(row: &GenRow) -> Vec<Value> {
    vec![
        row.0.map_or(Value::Null, Value::Int32),
        match &row.1 {
            Some(cs) if !cs.is_empty() => Value::Text(cs.iter().collect()),
            _ => Value::Null,
        },
        row.2.map_or(Value::Null, Value::Bool),
        row.3
            .map_or(Value::Null, |v| Value::Float64(v as f64 / 64.0)),
    ]
}

fn as_values(row: &GenRow) -> Row {
    let mut v = expected(row);
    // Write the empty string as itself; it must *read back* as NULL.
    if let Some(cs) = &row.1 {
        if cs.is_empty() {
            v[1] = Value::Text(String::new());
        }
    }
    Row(v)
}

fn write_body(rows: &[GenRow], omit_nulls: bool, crlf: bool, trailing: bool) -> Vec<u8> {
    let td = nodb_common::TempDir::new("nodb-json-prop").unwrap();
    let p = td.file("r.jsonl");
    let mut w = JsonlWriter::create(&p, &schema(), JsonlOptions { omit_nulls }).unwrap();
    for r in rows {
        w.write_row(&as_values(r)).unwrap();
    }
    w.finish().unwrap();
    let mut body = std::fs::read(&p).unwrap();
    if crlf {
        let mut out = Vec::with_capacity(body.len() + rows.len());
        for &b in &body {
            if b == b'\n' {
                out.push(b'\r');
            }
            out.push(b);
        }
        body = out;
    }
    if !trailing {
        while matches!(body.last(), Some(b'\n') | Some(b'\r')) {
            body.pop();
        }
    }
    body
}

/// Read every record of `path` through `LineReader` + the tokenizer.
fn read_all(path: &std::path::Path) -> Vec<Vec<Value>> {
    let format = JsonFormat::from_schema(&schema());
    let mut r = LineReader::open(path).unwrap();
    let mut line = Vec::new();
    let mut out = Vec::new();
    while r.next_line(&mut line).unwrap().is_some() {
        let mut starts = Vec::new();
        format
            .positions_upto(&line, DTYPES.len() - 1, &mut starts)
            .unwrap();
        out.push(
            starts
                .iter()
                .zip(DTYPES)
                .map(|(&s, dt)| format.parse_at(&line, s, dt).unwrap())
                .collect(),
        );
    }
    out
}

fn row_strategy() -> impl Strategy<Value = GenRow> {
    (
        proptest::option::of(any::<i32>()),
        proptest::option::of(proptest::collection::vec(any::<char>(), 0..8)),
        proptest::option::of(any::<bool>()),
        proptest::option::of(any::<i32>()),
    )
}

proptest! {
    /// writer → tokenizer → values is the identity (modulo the empty-
    /// string-is-NULL rule), whatever the layout knobs.
    #[test]
    fn jsonl_roundtrip(
        rows in proptest::collection::vec(row_strategy(), 0..25),
        omit_nulls in any::<bool>(),
        crlf in any::<bool>(),
        trailing in any::<bool>(),
    ) {
        let body = write_body(&rows, omit_nulls, crlf, trailing);
        let td = nodb_common::TempDir::new("nodb-json-prop").unwrap();
        let p = td.file("t.jsonl");
        std::fs::write(&p, &body).unwrap();
        let got = read_all(&p);
        prop_assert_eq!(got.len(), rows.len());
        for (g, r) in got.iter().zip(&rows) {
            prop_assert_eq!(g, &expected(r));
        }
    }

    /// Line-aligned chunking over JSONL bodies covers every byte exactly
    /// once, never splits a record, and reading the chunks in order
    /// reproduces the whole file's records — the invariant parallel cold
    /// scans rely on, independent of format.
    #[test]
    fn jsonl_chunking_partitions_records_exactly(
        rows in proptest::collection::vec(row_strategy(), 0..30),
        trailing in any::<bool>(),
        chunks in 1usize..9,
    ) {
        let body = write_body(&rows, false, false, trailing);
        let td = nodb_common::TempDir::new("nodb-json-prop").unwrap();
        let p = td.file("t.jsonl");
        std::fs::write(&p, &body).unwrap();
        let len = body.len() as u64;

        let ranges = split_line_aligned(&p, 0, len, chunks).unwrap();
        // Exact coverage: contiguous, non-empty, spanning [0, len).
        let mut covered = 0u64;
        for r in &ranges {
            prop_assert_eq!(r.start, covered);
            prop_assert!(r.end > r.start);
            covered = r.end;
        }
        prop_assert_eq!(covered, len);
        // Boundaries fall just past record terminators.
        for r in ranges.iter().skip(1) {
            prop_assert_eq!(body[r.start as usize - 1], b'\n');
        }
        // Chunked reads tokenize to exactly the whole-file records.
        let whole = read_all(&p);
        let format = JsonFormat::from_schema(&schema());
        let mut chunked = Vec::new();
        for range in &ranges {
            let mut r = LineReader::open_range(&p, *range).unwrap();
            let mut line = Vec::new();
            while r.next_line(&mut line).unwrap().is_some() {
                let mut starts = Vec::new();
                format.positions_upto(&line, DTYPES.len() - 1, &mut starts).unwrap();
                chunked.push(
                    starts
                        .iter()
                        .zip(DTYPES)
                        .map(|(&s, dt)| format.parse_at(&line, s, dt).unwrap())
                        .collect::<Vec<_>>(),
                );
            }
        }
        prop_assert_eq!(chunked, whole);
    }

    /// The mmap and buffered-read I/O backends are interchangeable under
    /// the JSONL tokenizer: over arbitrary generated files (escapes,
    /// unicode, omitted keys, CRLF, missing trailing newline, empty
    /// files, more chunks than records) both backends yield identical
    /// line offsets, tokenizer key positions, parsed values and chunk
    /// coverage — whether chunks re-open the file or slice one shared
    /// mapping.
    #[test]
    fn jsonl_io_backends_tokenize_identically(
        rows in proptest::collection::vec(row_strategy(), 0..30),
        omit_nulls in any::<bool>(),
        crlf in any::<bool>(),
        trailing in any::<bool>(),
        chunks in 1usize..9,
    ) {
        let body = write_body(&rows, omit_nulls, crlf, trailing);
        let td = nodb_common::TempDir::new("nodb-json-prop").unwrap();
        let p = td.file("t.jsonl");
        std::fs::write(&p, &body).unwrap();
        let len = body.len() as u64;
        let format = JsonFormat::from_schema(&schema());

        // (line offset, key positions, values) per record, per backend.
        let tokenize_reader = |r: &mut LineReader| {
            let mut line = Vec::new();
            let mut out = Vec::new();
            while let Some(off) = r.next_line(&mut line).unwrap() {
                let mut starts = Vec::new();
                format.positions_upto(&line, DTYPES.len() - 1, &mut starts).unwrap();
                let vals: Vec<Value> = starts
                    .iter()
                    .zip(DTYPES)
                    .map(|(&s, dt)| format.parse_at(&line, s, dt).unwrap())
                    .collect();
                out.push((off, starts, vals));
            }
            out
        };
        let whole_read =
            tokenize_reader(&mut LineReader::open_with(&p, IoBackend::Read).unwrap());
        let whole_mmap =
            tokenize_reader(&mut LineReader::open_with(&p, IoBackend::Mmap).unwrap());
        prop_assert_eq!(&whole_read, &whole_mmap);
        prop_assert_eq!(whole_read.len(), rows.len());

        // Chunk coverage: identical boundaries, and per-chunk records
        // concatenate to the whole file under both backends (shared
        // source slicing included).
        let base_ranges = split_line_aligned(&p, 0, len, chunks).unwrap();
        for backend in [IoBackend::Read, IoBackend::Mmap] {
            let src = std::sync::Arc::new(ByteSource::open(&p, backend).unwrap());
            let ranges = split_line_aligned_src(&src, 0, len, chunks).unwrap();
            prop_assert_eq!(&ranges, &base_ranges);
            let mut private = Vec::new();
            let mut shared = Vec::new();
            for range in &ranges {
                private.extend(tokenize_reader(
                    &mut LineReader::open_range_with(&p, *range, backend).unwrap(),
                ));
                shared.extend(tokenize_reader(&mut LineReader::from_source(
                    std::sync::Arc::clone(&src),
                    *range,
                )));
            }
            prop_assert_eq!(&private, &whole_read);
            prop_assert_eq!(&shared, &whole_read);
        }
    }
}
