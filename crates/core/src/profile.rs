//! Per-phase resource accounting: where a query's time and bytes go.
//!
//! [`ScanMetrics`](crate::ScanMetrics) counts *work items* (fields
//! tokenized, values parsed) and must stay bit-identical across
//! equivalent configurations — the differential suites compare it with
//! `==`. Wall-clock is inherently nondeterministic, so phase timings
//! live here, in a separate accumulator: [`PhaseProfile`] (a plain
//! snapshot), [`PhaseProfileAtomic`] (the lock-free accumulator, one per
//! table runtime plus one per executing query), and [`QueryProfile`]
//! (what [`QueryCursor::profile`](crate::QueryCursor::profile) returns).
//!
//! Timing every field conversion would tax the cold-scan hot path
//! measurably (two clock reads per row-phase), so scans *sample*: one
//! row in [`SAMPLE_EVERY`] takes the clock (row 0 always does), and the
//! sampled nanoseconds are scaled by the stride. Byte and value counts
//! are exact — only the `_ns` fields are estimates.
//!
//! Per-query attribution works without threading a context through
//! every `TableProvider`: `Statement::execute` installs the query's
//! accumulator in a thread-local, scan operators capture it at
//! construction time (plans are built on the executing thread), and
//! each scan adds its phase deltas to both the table's cumulative
//! profile and the capturing query's.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scans time one row in this many; sampled nanoseconds are scaled by
/// the same stride.
pub const SAMPLE_EVERY: u64 = 64;

/// Per-phase wall-clock and volume for raw-table work. The `_ns` fields
/// are sampled estimates (see module docs); the byte/count fields are
/// exact.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Estimated nanoseconds fetching raw bytes (line reads / mapped
    /// window slices).
    pub io_ns: u64,
    /// Raw-file bytes fetched for rows the scan visited.
    pub io_bytes: u64,
    /// Estimated nanoseconds locating fields by scanning characters.
    pub tokenize_ns: u64,
    /// Bytes consumed by tokenization (mirrors
    /// `ScanMetrics::bytes_tokenized` per query).
    pub tokenize_bytes: u64,
    /// Estimated nanoseconds converting/serving field values (includes
    /// anchored re-tokenization on the warm path).
    pub parse_ns: u64,
    /// Field values converted from ASCII to binary.
    pub parse_values: u64,
}

impl PhaseProfile {
    /// Fold another profile into this one (chunk workers accumulate
    /// locally; the merge adds them up).
    pub fn merge(&mut self, other: &PhaseProfile) {
        self.io_ns += other.io_ns;
        self.io_bytes += other.io_bytes;
        self.tokenize_ns += other.tokenize_ns;
        self.tokenize_bytes += other.tokenize_bytes;
        self.parse_ns += other.parse_ns;
        self.parse_values += other.parse_values;
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        *self == PhaseProfile::default()
    }
}

/// Lock-free accumulator behind [`PhaseProfile`], mirroring
/// [`ScanMetricsAtomic`](crate::ScanMetricsAtomic): scans add their
/// locally accumulated deltas in one shot per block or chunk.
#[derive(Debug, Default)]
pub struct PhaseProfileAtomic {
    io_ns: AtomicU64,
    io_bytes: AtomicU64,
    tokenize_ns: AtomicU64,
    tokenize_bytes: AtomicU64,
    parse_ns: AtomicU64,
    parse_values: AtomicU64,
}

impl PhaseProfileAtomic {
    /// Add a batch of locally accumulated phase deltas.
    pub fn add(&self, p: &PhaseProfile) {
        self.io_ns.fetch_add(p.io_ns, Ordering::Relaxed);
        self.io_bytes.fetch_add(p.io_bytes, Ordering::Relaxed);
        self.tokenize_ns.fetch_add(p.tokenize_ns, Ordering::Relaxed);
        self.tokenize_bytes
            .fetch_add(p.tokenize_bytes, Ordering::Relaxed);
        self.parse_ns.fetch_add(p.parse_ns, Ordering::Relaxed);
        self.parse_values
            .fetch_add(p.parse_values, Ordering::Relaxed);
    }

    /// Read the current totals.
    pub fn snapshot(&self) -> PhaseProfile {
        PhaseProfile {
            io_ns: self.io_ns.load(Ordering::Relaxed),
            io_bytes: self.io_bytes.load(Ordering::Relaxed),
            tokenize_ns: self.tokenize_ns.load(Ordering::Relaxed),
            tokenize_bytes: self.tokenize_bytes.load(Ordering::Relaxed),
            parse_ns: self.parse_ns.load(Ordering::Relaxed),
            parse_values: self.parse_values.load(Ordering::Relaxed),
        }
    }
}

/// What one query spent, phase by phase: the raw-scan phases it drove
/// (across every table it touched) plus cursor-level execution time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryProfile {
    /// Raw-scan phases attributed to this query.
    pub scan: PhaseProfile,
    /// Estimated nanoseconds inside cursor iteration (operator-tree
    /// execution end to end), sampled like the scan phases.
    pub exec_ns: u64,
    /// Rows the cursor has returned so far.
    pub rows: u64,
}

thread_local! {
    /// The accumulator of the query currently being *constructed* on
    /// this thread (see module docs).
    static CURRENT_QUERY: RefCell<Option<Arc<PhaseProfileAtomic>>> = const { RefCell::new(None) };
}

/// Install `profile` as the thread's current query accumulator for the
/// returned guard's lifetime. Nested scopes restore the outer value.
pub(crate) fn enter_query(profile: Arc<PhaseProfileAtomic>) -> QueryScope {
    let prev = CURRENT_QUERY.with(|c| c.borrow_mut().replace(profile));
    QueryScope { prev }
}

/// The accumulator installed by the innermost [`enter_query`] scope, if
/// any. Scan operators call this at construction time.
pub(crate) fn current_query() -> Option<Arc<PhaseProfileAtomic>> {
    CURRENT_QUERY.with(|c| c.borrow().clone())
}

/// Guard restoring the previous thread-local accumulator on drop.
pub(crate) struct QueryScope {
    prev: Option<Arc<PhaseProfileAtomic>>,
}

impl Drop for QueryScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_QUERY.with(|c| *c.borrow_mut() = prev);
    }
}

/// Sampled phase stopwatch for one scan phase: every
/// [`SAMPLE_EVERY`]-th row reads the clock and scales the measurement
/// by the stride, so per-row overhead stays amortized to a branch.
#[derive(Debug, Default)]
pub(crate) struct SampledClock {
    started: Option<Instant>,
}

impl SampledClock {
    /// Start timing if `row_idx` is a sampled row.
    #[inline]
    pub(crate) fn start(&mut self, row_idx: u64) {
        if row_idx.is_multiple_of(SAMPLE_EVERY) {
            self.started = Some(Instant::now());
        }
    }

    /// Stop a running sample and add the scaled nanoseconds to `sink`.
    #[inline]
    pub(crate) fn stop(&mut self, sink: &mut u64) {
        if let Some(t) = self.started.take() {
            *sink += t.elapsed().as_nanos() as u64 * SAMPLE_EVERY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_atomic_roundtrip() {
        let a = PhaseProfile {
            io_ns: 1,
            io_bytes: 2,
            tokenize_ns: 3,
            tokenize_bytes: 4,
            parse_ns: 5,
            parse_values: 6,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.io_bytes, 4);
        assert_eq!(b.parse_values, 12);
        let at = PhaseProfileAtomic::default();
        at.add(&a);
        at.add(&b);
        let s = at.snapshot();
        assert_eq!(s.io_ns, 3);
        assert_eq!(s.tokenize_bytes, 12);
        assert!(!s.is_empty());
        assert!(PhaseProfile::default().is_empty());
    }

    #[test]
    fn query_scope_nests_and_restores() {
        assert!(current_query().is_none());
        let outer = Arc::new(PhaseProfileAtomic::default());
        let inner = Arc::new(PhaseProfileAtomic::default());
        {
            let _o = enter_query(Arc::clone(&outer));
            assert!(Arc::ptr_eq(&current_query().unwrap(), &outer));
            {
                let _i = enter_query(Arc::clone(&inner));
                assert!(Arc::ptr_eq(&current_query().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current_query().unwrap(), &outer));
        }
        assert!(current_query().is_none());
    }

    #[test]
    fn sampled_clock_times_sampled_rows_only() {
        let mut c = SampledClock::default();
        let mut ns = 0u64;
        c.start(1); // not a sampled row
        c.stop(&mut ns);
        assert_eq!(ns, 0);
        c.start(0);
        c.stop(&mut ns);
        // Scaled by the stride; any nonzero elapsed counts.
        assert_eq!(ns % SAMPLE_EVERY, 0);
    }
}
