//! The wire protocol: length-prefixed frames carrying SQL text and
//! parameters toward the server and typed rows, results and errors back.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+-----+-------------------+
//! | u32 LE length  | tag | payload ...       |
//! +----------------+-----+-------------------+
//! ```
//!
//! `length` counts the tag byte plus the payload and is capped at
//! [`MAX_FRAME_BYTES`]; a larger announced length is a protocol error
//! *before* any allocation happens, so a hostile or corrupted peer
//! cannot make either side reserve unbounded memory. All integers are
//! little-endian; strings are `u32` length + UTF-8 bytes.
//!
//! # Conversation
//!
//! ```text
//! server -> Hello                      (on accept)
//! client -> Execute { sql, params }
//! server -> RowSchema                  (on success)
//!           Row*                       (zero or more, streamed lazily)
//!           Done { rows }
//!        |  Error { kind, message }    (statement failed)
//!        |  Busy { message }           (admission control rejected it)
//! client -> Stats { table }            (observability request)
//! server -> StatsReport(payload)       (counters + footprints + phases)
//!        |  Error { kind, message }    (e.g. unknown table)
//! client -> Cancel                     (abort the in-flight row stream)
//! server -> Cancelled { rows }         (stream stopped; connection reusable)
//! client -> Goodbye                    (clean close)
//! ```
//!
//! Rows are streamed frame-by-frame straight off the engine's lazy
//! [`QueryCursor`](nodb_core::QueryCursor): a client that stops reading
//! (or disconnects) makes the server's writes fail, which drops the
//! cursor and stops the underlying raw-file scan at block granularity.
//!
//! `Cancel` is the polite version of that disconnect: the client keeps
//! draining row frames while the server, which polls for inbound frames
//! at each flush boundary, drops its cursor (the same early-stop path an
//! abandoned cursor takes) and answers `Cancelled` with the number of
//! rows it had streamed. Because the server might finish the stream
//! before noticing, a `Cancel` that arrives *between* statements is
//! answered with `Cancelled { rows: 0 }` — so a client that sent
//! `Cancel` always reads exactly one `Cancelled`, whether or not it won
//! the race, and the connection stays usable either way.
//!
//! Every decoder returns a typed [`NoDbError`] on truncated input,
//! unknown tags, bad lengths or invalid UTF-8 — never a panic.

use std::io::{Read, Write};

use nodb_common::{DataType, Date, Field, NoDbError, Result, Row, Schema, Value};

/// Protocol version carried in [`Frame::Hello`]. Bump on incompatible
/// frame-layout changes; the client refuses mismatched servers.
///
/// v2 added the `Stats` / `StatsReport` observability frames.
/// v3 added the `Cancel` / `Cancelled` in-flight-stream abort frames.
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on the announced frame length (tag + payload), checked
/// before any payload allocation. One frame carries one row (or one SQL
/// statement with its parameters), so 16 MiB is far beyond anything the
/// engine produces while still bounding a malicious length prefix.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// One protocol frame. See the [module docs](self) for the layout and
/// the conversation in which each frame may appear.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Server greeting, sent once per connection on accept.
    Hello {
        /// [`PROTOCOL_VERSION`] of the serving side.
        version: u16,
        /// Human-readable server identification.
        server: String,
    },
    /// Execute a SQL statement with positional parameters. The server
    /// caches the prepared form per connection, keyed by the SQL text,
    /// so repeated `Execute`s with the same text skip lex/parse/bind.
    Execute {
        /// Statement text (`?` / `$N` placeholders allowed).
        sql: String,
        /// Positional parameter values, one per placeholder slot.
        params: Vec<Value>,
    },
    /// Output schema of a successfully started statement; precedes the
    /// row stream.
    RowSchema {
        /// Column `(name, type)` pairs, in output order.
        columns: Vec<(String, DataType)>,
    },
    /// One result row.
    Row(Row),
    /// End of a successful row stream.
    Done {
        /// Number of `Row` frames that preceded this one.
        rows: u64,
    },
    /// The statement failed. `kind` mirrors the [`NoDbError`] variant so
    /// the client can rebuild a typed error (see [`ErrorKind`]).
    Error {
        /// Coarse error category.
        kind: ErrorKind,
        /// Human-readable message.
        message: String,
    },
    /// Admission control rejected the request: the server is at its
    /// configured in-flight query (or connection) capacity. Back off and
    /// retry; nothing was executed.
    Busy {
        /// What was saturated.
        message: String,
    },
    /// Request the server-side observability view of one table: scan
    /// metrics, auxiliary footprints, phase profile and workload heat.
    Stats {
        /// The registered table name.
        table: String,
    },
    /// Reply to [`Frame::Stats`].
    StatsReport(StatsPayload),
    /// Abort the in-flight row stream without severing the connection.
    /// The server drops its cursor (stopping the raw scan the way an
    /// abandoned cursor does) and answers [`Frame::Cancelled`]; sent
    /// between statements it is a no-op that still gets its `Cancelled`,
    /// so the client always reads exactly one acknowledgement.
    Cancel,
    /// Acknowledges a [`Frame::Cancel`]: the stream (if any) is stopped
    /// and the connection is ready for the next request.
    Cancelled {
        /// `Row` frames streamed before the cancellation took effect
        /// (0 when the `Cancel` arrived between statements).
        rows: u64,
    },
    /// Clean end of the conversation (sent by the client before
    /// closing, and by the server to idle connections during shutdown).
    Goodbye,
}

/// Everything a `Stats` request reports about one in-situ table: the
/// engine's [`ScanMetrics`](nodb_core::ScanMetrics) counters, the
/// auxiliary-structure footprint
/// ([`AuxInfo`](nodb_core::AuxInfo)-shaped), the cumulative
/// [`PhaseProfile`](nodb_core::PhaseProfile), and the per-attribute
/// workload heat driving budgeted evictions. Plain wire-friendly fields
/// so the payload can outlive engine-struct changes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsPayload {
    /// Queries that scanned the table.
    pub scans: u64,
    /// Tuples emitted to query plans.
    pub rows_emitted: u64,
    /// Fields located by scanning characters.
    pub fields_tokenized: u64,
    /// Fields located by jumping straight to a map position.
    pub fields_via_map: u64,
    /// Fields located by incremental parsing from a map anchor.
    pub fields_via_anchor: u64,
    /// Field values converted from ASCII to binary.
    pub fields_parsed: u64,
    /// Field values served from the binary cache.
    pub fields_from_cache: u64,
    /// Bytes of raw file consumed by sequential tokenization.
    pub bytes_tokenized: u64,
    /// Positional-map bytes in memory.
    pub posmap_bytes: u64,
    /// Total positional pointers held.
    pub posmap_pointers: u64,
    /// Cache bytes in memory.
    pub cache_bytes: u64,
    /// Cache utilization in `[0, 1]` (0 when no budget set).
    pub cache_utilization: f64,
    /// Attributes with collected statistics.
    pub stats_attrs: u64,
    /// Estimated nanoseconds fetching raw bytes.
    pub io_ns: u64,
    /// Raw-file bytes fetched.
    pub io_bytes: u64,
    /// Estimated nanoseconds tokenizing.
    pub tokenize_ns: u64,
    /// Bytes consumed by tokenization.
    pub tokenize_bytes: u64,
    /// Estimated nanoseconds converting values.
    pub parse_ns: u64,
    /// Field values converted.
    pub parse_values: u64,
    /// `(attribute ordinal, decayed touch count)` for attributes with
    /// nonzero workload heat, ascending by ordinal.
    pub heats: Vec<(u32, u64)>,
}

/// Wire encoding of [`NoDbError`] categories (one byte in an
/// [`Frame::Error`] frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorKind {
    /// [`NoDbError::Io`]
    Io = 0,
    /// [`NoDbError::Parse`]
    Parse = 1,
    /// [`NoDbError::Sql`]
    Sql = 2,
    /// [`NoDbError::Plan`]
    Plan = 3,
    /// [`NoDbError::Execution`]
    Execution = 4,
    /// [`NoDbError::Catalog`]
    Catalog = 5,
    /// [`NoDbError::Config`]
    Config = 6,
    /// [`NoDbError::Internal`]
    Internal = 7,
    /// The server is shutting down and refuses new work.
    Shutdown = 8,
}

impl ErrorKind {
    /// Classify an engine error for the wire.
    pub fn of(e: &NoDbError) -> ErrorKind {
        match e {
            NoDbError::Io(_) => ErrorKind::Io,
            NoDbError::Parse(_) => ErrorKind::Parse,
            NoDbError::Sql(_) => ErrorKind::Sql,
            NoDbError::Plan(_) => ErrorKind::Plan,
            NoDbError::Execution(_) => ErrorKind::Execution,
            NoDbError::Catalog(_) => ErrorKind::Catalog,
            NoDbError::Config(_) => ErrorKind::Config,
            // Busy travels as its own frame, but classify it anyway so
            // an engine-level Busy does not panic the encoder.
            NoDbError::Busy(_) => ErrorKind::Execution,
            NoDbError::Internal(_) => ErrorKind::Internal,
        }
    }

    /// Rebuild a typed [`NoDbError`] on the client side.
    pub fn to_error(self, message: String) -> NoDbError {
        match self {
            ErrorKind::Io => NoDbError::Io(std::io::Error::other(message)),
            ErrorKind::Parse => NoDbError::Parse(message),
            ErrorKind::Sql => NoDbError::Sql(message),
            ErrorKind::Plan => NoDbError::Plan(message),
            ErrorKind::Execution => NoDbError::Execution(message),
            ErrorKind::Catalog => NoDbError::Catalog(message),
            ErrorKind::Config => NoDbError::Config(message),
            ErrorKind::Internal => NoDbError::Internal(message),
            ErrorKind::Shutdown => NoDbError::Execution(format!("server shutdown: {message}")),
        }
    }

    fn from_u8(b: u8) -> Result<ErrorKind> {
        Ok(match b {
            0 => ErrorKind::Io,
            1 => ErrorKind::Parse,
            2 => ErrorKind::Sql,
            3 => ErrorKind::Plan,
            4 => ErrorKind::Execution,
            5 => ErrorKind::Catalog,
            6 => ErrorKind::Config,
            7 => ErrorKind::Internal,
            8 => ErrorKind::Shutdown,
            other => return Err(wire_err(format!("unknown error kind {other}"))),
        })
    }
}

// Frame tags. Client->server: 0x0_, server->client: 0x1_.
const TAG_EXECUTE: u8 = 0x01;
const TAG_GOODBYE: u8 = 0x02;
const TAG_STATS: u8 = 0x03;
const TAG_CANCEL: u8 = 0x04;
const TAG_HELLO: u8 = 0x10;
const TAG_SCHEMA: u8 = 0x11;
const TAG_ROW: u8 = 0x12;
const TAG_DONE: u8 = 0x13;
const TAG_ERROR: u8 = 0x14;
const TAG_BUSY: u8 = 0x15;
const TAG_STATS_REPORT: u8 = 0x16;
const TAG_CANCELLED: u8 = 0x17;

// Value tags.
const VAL_NULL: u8 = 0;
const VAL_INT32: u8 = 1;
const VAL_INT64: u8 = 2;
const VAL_FLOAT64: u8 = 3;
const VAL_TEXT: u8 = 4;
const VAL_DATE: u8 = 5;
const VAL_BOOL: u8 = 6;

fn wire_err(msg: impl std::fmt::Display) -> NoDbError {
    NoDbError::parse(format!("wire protocol: {msg}"))
}

fn dtype_to_u8(t: DataType) -> u8 {
    match t {
        DataType::Int32 => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Text => 3,
        DataType::Date => 4,
        DataType::Bool => 5,
    }
}

fn dtype_from_u8(b: u8) -> Result<DataType> {
    Ok(match b {
        0 => DataType::Int32,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Text,
        4 => DataType::Date,
        5 => DataType::Bool,
        other => return Err(wire_err(format!("unknown data type {other}"))),
    })
}

// ----- encoding -------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let n = u32::try_from(s.len()).map_err(|_| {
        wire_err(format!(
            "string of {} bytes exceeds the u32 length field",
            s.len()
        ))
    })?;
    put_u32(out, n);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Encode a collection count into a `u16` wire field, rejecting
/// collections the field cannot represent instead of truncating.
fn put_count_u16(out: &mut Vec<u8>, n: usize, what: &str) -> Result<()> {
    let v = u16::try_from(n)
        .map_err(|_| wire_err(format!("{what} count {n} exceeds the u16 wire field")))?;
    put_u16(out, v);
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Int32(x) => {
            out.push(VAL_INT32);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Int64(x) => {
            out.push(VAL_INT64);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            out.push(VAL_FLOAT64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(VAL_TEXT);
            put_str(out, s)?;
        }
        Value::Date(d) => {
            out.push(VAL_DATE);
            out.extend_from_slice(&d.days().to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
    }
    Ok(())
}

impl Frame {
    /// Append this frame's full wire form — length prefix, tag, payload
    /// — to `out`. Fails (restoring `out` to its original length) when a
    /// string, count or body length overflows its wire field — checked
    /// conversions, never silent truncation.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<()> {
        let len_at = out.len();
        put_u32(out, 0); // patched below
        if let Err(e) = self.encode_body(out) {
            out.truncate(len_at);
            return Err(e);
        }
        let body_len = out.len() - len_at - 4;
        match u32::try_from(body_len) {
            Ok(n) if n <= MAX_FRAME_BYTES => {
                out[len_at..len_at + 4].copy_from_slice(&n.to_le_bytes());
                Ok(())
            }
            _ => {
                out.truncate(len_at);
                Err(wire_err(format!(
                    "encoded frame body of {body_len} bytes exceeds the \
                     {MAX_FRAME_BYTES}-byte cap"
                )))
            }
        }
    }

    /// The tag + payload of [`Frame::encode`], without the length prefix.
    fn encode_body(&self, out: &mut Vec<u8>) -> Result<()> {
        match self {
            Frame::Hello { version, server } => {
                out.push(TAG_HELLO);
                put_u16(out, *version);
                put_str(out, server)?;
            }
            Frame::Execute { sql, params } => {
                out.push(TAG_EXECUTE);
                put_str(out, sql)?;
                put_count_u16(out, params.len(), "parameter")?;
                for p in params {
                    put_value(out, p)?;
                }
            }
            Frame::RowSchema { columns } => {
                out.push(TAG_SCHEMA);
                put_count_u16(out, columns.len(), "column")?;
                for (name, dtype) in columns {
                    put_str(out, name)?;
                    out.push(dtype_to_u8(*dtype));
                }
            }
            Frame::Row(row) => {
                out.push(TAG_ROW);
                put_count_u16(out, row.values().len(), "row value")?;
                for v in row.values() {
                    put_value(out, v)?;
                }
            }
            Frame::Done { rows } => {
                out.push(TAG_DONE);
                put_u64(out, *rows);
            }
            Frame::Error { kind, message } => {
                out.push(TAG_ERROR);
                // CAST: ErrorKind is #[repr(u8)] with explicit
                // discriminants 0..=8 — the discriminant is the wire byte.
                out.push(*kind as u8);
                put_str(out, message)?;
            }
            Frame::Busy { message } => {
                out.push(TAG_BUSY);
                put_str(out, message)?;
            }
            Frame::Stats { table } => {
                out.push(TAG_STATS);
                put_str(out, table)?;
            }
            Frame::StatsReport(p) => {
                out.push(TAG_STATS_REPORT);
                for v in [
                    p.scans,
                    p.rows_emitted,
                    p.fields_tokenized,
                    p.fields_via_map,
                    p.fields_via_anchor,
                    p.fields_parsed,
                    p.fields_from_cache,
                    p.bytes_tokenized,
                    p.posmap_bytes,
                    p.posmap_pointers,
                    p.cache_bytes,
                    p.cache_utilization.to_bits(),
                    p.stats_attrs,
                    p.io_ns,
                    p.io_bytes,
                    p.tokenize_ns,
                    p.tokenize_bytes,
                    p.parse_ns,
                    p.parse_values,
                ] {
                    put_u64(out, v);
                }
                let n = u32::try_from(p.heats.len())
                    .map_err(|_| wire_err("heat count exceeds the u32 wire field"))?;
                put_u32(out, n);
                for (attr, heat) in &p.heats {
                    put_u32(out, *attr);
                    put_u64(out, *heat);
                }
            }
            Frame::Cancel => out.push(TAG_CANCEL),
            Frame::Cancelled { rows } => {
                out.push(TAG_CANCELLED);
                put_u64(out, *rows);
            }
            Frame::Goodbye => out.push(TAG_GOODBYE),
        }
        Ok(())
    }

    /// Encode into a fresh buffer (convenience for one-off frames).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.encode(&mut out)?;
        Ok(out)
    }

    /// Decode one frame body (tag + payload, *without* the length
    /// prefix). Trailing bytes after a complete frame are an error: a
    /// frame is exactly one message.
    pub fn decode(body: &[u8]) -> Result<Frame> {
        let mut r = Reader::new(body);
        let tag = r.u8()?;
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                version: r.u16()?,
                server: r.string()?,
            },
            TAG_EXECUTE => {
                let sql = r.string()?;
                let n = r.u16()? as usize;
                let mut params = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    params.push(r.value()?);
                }
                Frame::Execute { sql, params }
            }
            TAG_SCHEMA => {
                let n = r.u16()? as usize;
                let mut columns = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    let name = r.string()?;
                    let dtype = dtype_from_u8(r.u8()?)?;
                    columns.push((name, dtype));
                }
                Frame::RowSchema { columns }
            }
            TAG_ROW => {
                let n = r.u16()? as usize;
                let mut values = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    values.push(r.value()?);
                }
                Frame::Row(Row(values))
            }
            TAG_DONE => Frame::Done { rows: r.u64()? },
            TAG_ERROR => Frame::Error {
                kind: ErrorKind::from_u8(r.u8()?)?,
                message: r.string()?,
            },
            TAG_BUSY => Frame::Busy {
                message: r.string()?,
            },
            TAG_STATS => Frame::Stats { table: r.string()? },
            TAG_STATS_REPORT => {
                let mut p = StatsPayload {
                    scans: r.u64()?,
                    rows_emitted: r.u64()?,
                    fields_tokenized: r.u64()?,
                    fields_via_map: r.u64()?,
                    fields_via_anchor: r.u64()?,
                    fields_parsed: r.u64()?,
                    fields_from_cache: r.u64()?,
                    bytes_tokenized: r.u64()?,
                    posmap_bytes: r.u64()?,
                    posmap_pointers: r.u64()?,
                    cache_bytes: r.u64()?,
                    cache_utilization: f64::from_bits(r.u64()?),
                    stats_attrs: r.u64()?,
                    io_ns: r.u64()?,
                    io_bytes: r.u64()?,
                    tokenize_ns: r.u64()?,
                    tokenize_bytes: r.u64()?,
                    parse_ns: r.u64()?,
                    parse_values: r.u64()?,
                    heats: Vec::new(),
                };
                let n = r.u32()? as usize;
                p.heats.reserve(n.min(r.remaining()));
                for _ in 0..n {
                    let attr = r.u32()?;
                    let heat = r.u64()?;
                    p.heats.push((attr, heat));
                }
                Frame::StatsReport(p)
            }
            TAG_CANCEL => Frame::Cancel,
            TAG_CANCELLED => Frame::Cancelled { rows: r.u64()? },
            TAG_GOODBYE => Frame::Goodbye,
            other => return Err(wire_err(format!("unknown frame tag {other:#04x}"))),
        };
        if r.remaining() != 0 {
            return Err(wire_err(format!(
                "{} trailing byte(s) after frame",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Read exactly one frame from `r`. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed); mid-frame EOF, an oversized
/// announced length, or a malformed body are typed errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut len = [0u8; 4];
    // A clean close at a frame boundary is `Ok(None)`.
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => r
            .read_exact(&mut len[n..])
            .map_err(|e| eof_err(e, "length prefix"))?,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r);
        }
        Err(e) => return Err(NoDbError::Io(e)),
    }
    let len = u32::from_le_bytes(len);
    if len == 0 {
        return Err(wire_err("zero-length frame"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "announced frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| eof_err(e, "frame body"))?;
    Frame::decode(&body).map(Some)
}

/// How many consecutive read-timeout ticks [`read_frame_timeout`]
/// tolerates *mid-frame* before declaring the peer stalled. With the
/// server's default 50 ms poll interval this is ~10 s of patience —
/// enough for any real network hiccup, small enough that a stalled
/// client cannot hold graceful shutdown hostage.
const MAX_MIDFRAME_TIMEOUTS: u32 = 200;

/// Like [`read_frame`], but built for a stream with a read timeout set
/// (the server's idle-poll mechanism). A timeout that fires *before any
/// byte of a frame arrived* surfaces as a `WouldBlock`/`TimedOut`
/// [`NoDbError::Io`] — the caller treats it as an idle tick, checks for
/// shutdown, and polls again. A timeout *mid-frame* retries internally
/// (the peer has committed a length prefix; the rest is in flight),
/// giving up with a typed error after a bounded number of ticks.
pub fn read_frame_timeout(r: &mut impl Read) -> Result<Option<Frame>> {
    fn fill(r: &mut impl Read, buf: &mut [u8], mut filled: usize, what: &str) -> Result<usize> {
        let mut stalled: u32 = 0;
        while filled < buf.len() {
            match r.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if filled == 0 {
                        Ok(0)
                    } else {
                        Err(wire_err(format!("connection closed mid-{what}")))
                    };
                }
                Ok(n) => {
                    filled += n;
                    stalled = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if filled == 0 {
                        // Idle between frames: let the caller decide.
                        return Err(NoDbError::Io(e));
                    }
                    stalled += 1;
                    if stalled > MAX_MIDFRAME_TIMEOUTS {
                        return Err(wire_err(format!("peer stalled mid-{what}")));
                    }
                }
                Err(e) => return Err(NoDbError::Io(e)),
            }
        }
        Ok(filled)
    }

    let mut len = [0u8; 4];
    if fill(r, &mut len, 0, "length prefix")? == 0 {
        return Ok(None); // clean EOF at a frame boundary
    }
    let len = u32::from_le_bytes(len);
    if len == 0 {
        return Err(wire_err("zero-length frame"));
    }
    if len > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "announced frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    // `filled = 0` would mean EOF here, but the peer already sent the
    // prefix, so treat a zero-fill as the mid-frame close it is.
    match fill(r, &mut body, 0, "frame body")? {
        0 if !body.is_empty() => Err(wire_err("connection closed mid-frame body")),
        _ => Frame::decode(&body).map(Some),
    }
}

fn eof_err(e: std::io::Error, what: &str) -> NoDbError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        wire_err(format!("connection closed mid-{what}"))
    } else {
        NoDbError::Io(e)
    }
}

/// Write one frame to `w` (single `write_all` of the encoded bytes).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    w.write_all(&frame.to_bytes()?)?;
    Ok(())
}

/// Build a [`Frame::RowSchema`] from an engine [`Schema`].
pub fn schema_frame(schema: &Schema) -> Frame {
    Frame::RowSchema {
        columns: schema
            .fields()
            .iter()
            .map(|f| (f.name.clone(), f.dtype))
            .collect(),
    }
}

/// Rebuild an engine [`Schema`] from a [`Frame::RowSchema`] column list.
pub fn schema_of_columns(columns: &[(String, DataType)]) -> Result<Schema> {
    Schema::new(
        columns
            .iter()
            .map(|(n, t)| Field::new(n.clone(), *t))
            .collect(),
    )
}

/// Bounds-checked cursor over a frame body. Every accessor returns a
/// typed error on underrun instead of panicking, which is what makes
/// `Frame::decode` safe on truncated or garbage input.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(wire_err(format!(
                "truncated frame: wanted {n} byte(s), {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        // The length is validated against what is actually present
        // before any allocation: a lying prefix cannot reserve memory.
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| wire_err("string is not valid UTF-8"))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            VAL_NULL => Value::Null,
            VAL_INT32 => Value::Int32(self.i32()?),
            VAL_INT64 => Value::Int64(self.i64()?),
            VAL_FLOAT64 => Value::Float64(f64::from_bits(self.u64()?)),
            VAL_TEXT => Value::Text(self.string()?),
            VAL_DATE => Value::Date(Date(self.i32()?)),
            VAL_BOOL => match self.u8()? {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                other => return Err(wire_err(format!("bad bool byte {other}"))),
            },
            other => return Err(wire_err(format!("unknown value tag {other}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.to_bytes().expect("encode");
        let got = read_frame(&mut &bytes[..]).expect("read").expect("frame");
        assert_eq!(got, f);
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            server: "nodb 0.1".into(),
        });
        roundtrip(Frame::Execute {
            sql: "select * from t where a < ? and b like $2".into(),
            params: vec![
                Value::Null,
                Value::Int32(-7),
                Value::Int64(1 << 40),
                Value::Float64(-0.25),
                Value::Text("al%".into()),
                Value::Date(Date(20_000)),
                Value::Bool(true),
            ],
        });
        roundtrip(Frame::RowSchema {
            columns: vec![
                ("id".into(), DataType::Int32),
                ("name".into(), DataType::Text),
                ("day".into(), DataType::Date),
            ],
        });
        roundtrip(Frame::Row(Row(vec![
            Value::Int32(1),
            Value::Text("x".into()),
            Value::Null,
        ])));
        roundtrip(Frame::Done { rows: u64::MAX });
        roundtrip(Frame::Error {
            kind: ErrorKind::Plan,
            message: "unknown table `z`".into(),
        });
        roundtrip(Frame::Busy {
            message: "8 queries in flight".into(),
        });
        roundtrip(Frame::Stats {
            table: "lineitem".into(),
        });
        roundtrip(Frame::StatsReport(StatsPayload {
            scans: 3,
            rows_emitted: 1_000_000,
            fields_tokenized: 42,
            fields_via_map: 7,
            fields_via_anchor: 5,
            fields_parsed: 99,
            fields_from_cache: 11,
            bytes_tokenized: 1 << 33,
            posmap_bytes: 4096,
            posmap_pointers: 1024,
            cache_bytes: 8192,
            cache_utilization: 0.75,
            stats_attrs: 4,
            io_ns: 17,
            io_bytes: 1 << 20,
            tokenize_ns: 23,
            tokenize_bytes: 1 << 19,
            parse_ns: 29,
            parse_values: 31,
            heats: vec![(0, 12), (3, 1), (u32::MAX, u64::MAX)],
        }));
        roundtrip(Frame::StatsReport(StatsPayload::default()));
        roundtrip(Frame::Cancel);
        roundtrip(Frame::Cancelled { rows: 12_345 });
        roundtrip(Frame::Goodbye);
    }

    #[test]
    fn truncated_stats_report_is_a_typed_error() {
        let bytes = Frame::StatsReport(StatsPayload {
            heats: vec![(1, 2)],
            ..StatsPayload::default()
        })
        .to_bytes()
        .expect("encode");
        // Strip the length prefix, then cut the body everywhere.
        let body = &bytes[4..];
        for cut in 1..body.len() {
            assert!(Frame::decode(&body[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn nan_float_survives_bitwise() {
        let bytes = Frame::Row(Row(vec![Value::Float64(f64::NAN)]))
            .to_bytes()
            .expect("encode");
        let got = read_frame(&mut &bytes[..]).unwrap().unwrap();
        match got {
            Frame::Row(Row(vs)) => match vs[0] {
                Value::Float64(f) => assert!(f.is_nan()),
                ref other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        assert!(read_frame(&mut &[][..]).unwrap().is_none());
        let bytes = Frame::Goodbye.to_bytes().expect("encode");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, NoDbError::Parse(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME_BYTES + 1);
        bytes.push(TAG_GOODBYE);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn garbage_tags_and_trailing_bytes_are_typed_errors() {
        assert!(Frame::decode(&[0xEE]).is_err());
        assert!(Frame::decode(&[]).is_err());
        // Valid Goodbye followed by junk.
        assert!(Frame::decode(&[TAG_GOODBYE, 0, 1, 2]).is_err());
        // A row whose value tag is garbage.
        let mut body = vec![TAG_ROW];
        put_u16(&mut body, 1);
        body.push(250);
        assert!(Frame::decode(&body).is_err());
    }

    #[test]
    fn lying_string_length_is_bounded() {
        // Claims a 3 GiB string with 2 bytes present.
        let mut body = vec![TAG_BUSY];
        put_u32(&mut body, 3 << 30);
        body.extend_from_slice(b"hi");
        let err = Frame::decode(&body).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn error_kinds_roundtrip_to_typed_errors() {
        let e = ErrorKind::of(&NoDbError::catalog("nope"));
        assert_eq!(e, ErrorKind::Catalog);
        assert!(matches!(
            e.to_error("nope".into()),
            NoDbError::Catalog(m) if m == "nope"
        ));
        for b in 0..=8u8 {
            assert!(ErrorKind::from_u8(b).is_ok());
        }
        assert!(ErrorKind::from_u8(9).is_err());
    }
}
