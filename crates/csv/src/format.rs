//! [`LineFormat`] implementation for character-delimited files.
//!
//! This is the thin adapter between the format-generic scan core in
//! `nodb-core` and the CSV tokenization primitives in [`crate::tokenize`]:
//! positions come from selective tokenization, values are the verbatim
//! bytes between delimiters coerced by
//! [`Value::parse_field`](nodb_common::Value::parse_field), and anchor
//! navigation counts delimiters forwards or backwards (§4.2, incremental
//! parsing in both directions).

use nodb_common::{DataType, LineFormat, NoDbError, RawField, Result, Value, NO_POSITION};

use crate::tokenize;
use crate::CsvOptions;

/// Character-delimited records: fields appear in schema order, separated
/// by a single delimiter byte, no quoting (see the crate docs).
#[derive(Debug, Clone, Copy)]
pub struct CsvFormat {
    delim: u8,
}

impl CsvFormat {
    /// A format for the given physical layout (only the delimiter matters
    /// to tokenization; header handling lives in the scan).
    pub fn new(opts: CsvOptions) -> CsvFormat {
        CsvFormat {
            delim: opts.delimiter,
        }
    }

    /// The field delimiter.
    pub fn delimiter(&self) -> u8 {
        self.delim
    }
}

impl LineFormat for CsvFormat {
    fn positions_upto(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize> {
        Ok(tokenize::tokenize_upto(line, self.delim, upto, out))
    }

    fn parse_at(&self, line: &[u8], start: u32, dtype: DataType) -> Result<Value> {
        if start == NO_POSITION {
            return Ok(Value::Null);
        }
        Value::parse_field(tokenize::field_at(line, self.delim, start), dtype)
    }

    fn advance(&self, line: &[u8], from_start: u32, from_idx: usize, to_idx: usize) -> Result<u32> {
        let res = if from_idx <= to_idx {
            tokenize::advance_forward(line, self.delim, from_start, from_idx, to_idx)
        } else {
            tokenize::advance_backward(line, self.delim, from_start, from_idx, to_idx)
        };
        res.ok_or_else(|| {
            NoDbError::parse(format!("record has too few fields for attribute {to_idx}"))
        })
    }

    fn positions_extend(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize> {
        Ok(tokenize::tokenize_resume(line, self.delim, upto, out))
    }

    fn raw_field<'a>(&self, line: &'a [u8], start: u32) -> RawField<'a> {
        if start == NO_POSITION {
            return RawField::Null;
        }
        let bytes = tokenize::field_at(line, self.delim, start);
        if bytes.is_empty() {
            // Empty field is NULL (Value::parse_field's rule).
            RawField::Null
        } else {
            RawField::Text(bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &[u8] = b"aa,7,,1.5";

    #[test]
    fn positions_match_tokenizer() {
        let f = CsvFormat::new(CsvOptions::default());
        let mut out = Vec::new();
        assert_eq!(f.positions_upto(LINE, 3, &mut out).unwrap(), 4);
        assert_eq!(out, vec![0, 3, 5, 6]);
        out.clear();
        // Short record: fewer starts than requested, not an error (the
        // scan turns the shortfall into a located field-count error).
        assert_eq!(f.positions_upto(b"x", 3, &mut out).unwrap(), 1);
    }

    #[test]
    fn parse_at_coerces_and_handles_null() {
        let f = CsvFormat::new(CsvOptions::default());
        assert_eq!(
            f.parse_at(LINE, 3, DataType::Int32).unwrap(),
            Value::Int32(7)
        );
        // Empty field and NO_POSITION are both NULL.
        assert_eq!(f.parse_at(LINE, 5, DataType::Int32).unwrap(), Value::Null);
        assert_eq!(
            f.parse_at(LINE, NO_POSITION, DataType::Int32).unwrap(),
            Value::Null
        );
        assert!(f.parse_at(LINE, 0, DataType::Int32).is_err());
    }

    #[test]
    fn raw_field_mirrors_parse_semantics() {
        let f = CsvFormat::new(CsvOptions::default());
        assert_eq!(f.raw_field(LINE, 0), RawField::Text(b"aa"));
        assert_eq!(f.raw_field(LINE, 3), RawField::Text(b"7"));
        // Empty field is NULL, as in parse_at.
        assert_eq!(f.raw_field(LINE, 5), RawField::Null);
        assert_eq!(f.raw_field(LINE, NO_POSITION), RawField::Null);
    }

    #[test]
    fn positions_extend_resumes_tokenization() {
        let f = CsvFormat::new(CsvOptions::default());
        let mut out = Vec::new();
        f.positions_upto(LINE, 1, &mut out).unwrap();
        assert_eq!(f.positions_extend(LINE, 3, &mut out).unwrap(), 4);
        assert_eq!(out, vec![0, 3, 5, 6]);
    }

    #[test]
    fn advance_navigates_both_directions() {
        let f = CsvFormat::new(CsvOptions::default());
        assert_eq!(f.advance(LINE, 3, 1, 3).unwrap(), 6);
        assert_eq!(f.advance(LINE, 6, 3, 1).unwrap(), 3);
        assert_eq!(f.advance(LINE, 3, 1, 1).unwrap(), 3);
        assert!(f.advance(LINE, 3, 1, 9).is_err());
    }
}
