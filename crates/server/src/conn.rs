//! A small abstraction over the two stream kinds the server speaks:
//! TCP sockets and unix-domain sockets.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One accepted (or dialed) connection, TCP or unix-domain.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    /// Bound how long a blocking `read` may wait, so idle handler
    /// threads periodically come up for air and observe shutdown.
    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(dur),
            Conn::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Half/full-close the connection. Used by the client to abandon a
    /// stream mid-flight: the server's next write fails, dropping its
    /// cursor and stopping the raw scan early.
    pub(crate) fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}
