//! The blocking, thread-per-connection query server.
//!
//! One shared [`NoDb`] serves every connection — `query(&self)` is
//! concurrent and the adaptive aux structures (positional maps, caches,
//! statistics) are engine-internal and thread-safe, so a cold scan by
//! one client warms the warm path for all of them.
//!
//! # Admission control
//!
//! Two independent caps, both answered with a typed
//! [`Frame::Busy`](crate::protocol::Frame) instead of an
//! unbounded queue or a hang:
//!
//! - `max_connections`: excess *connections* are greeted with `Busy`
//!   and closed at accept time.
//! - `max_inflight`: excess *queries* on accepted connections get a
//!   `Busy` reply; the connection stays open and the client may retry.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips a flag and self-dials the listener
//! to wake `accept`. The accept loop stops taking connections (the
//! listener is dropped immediately, so new dials are refused by the
//! OS), idle handlers send `Goodbye` and exit at their next poll tick,
//! and in-flight cursors run to completion — shutdown *drains*, it does
//! not sever.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nodb_common::{NoDbError, Result, Value};
use nodb_core::{NoDb, Params, Statement};

use crate::conn::Conn;
use crate::protocol::{
    read_frame_timeout, schema_frame, write_frame, ErrorKind, Frame, StatsPayload, PROTOCOL_VERSION,
};

/// Build the observability view of one in-situ table that a
/// [`Frame::Stats`] request returns: scan metrics, auxiliary footprint,
/// cumulative phase profile and workload heat, all read from the same
/// engine snapshot the embedded accessors expose. Shared by the server's
/// request handler and the CLI's local `\stats` view so both render
/// identical numbers.
pub fn collect_stats(db: &NoDb, table: &str) -> Result<StatsPayload> {
    let m = db.metrics(table)?;
    let aux = db.aux_info(table)?;
    let prof = db.profile(table)?;
    let heats = db
        .workload_heats(table)?
        .into_iter()
        .enumerate()
        .filter(|&(_, h)| h > 0)
        .map(|(a, h)| (a as u32, h))
        .collect();
    Ok(StatsPayload {
        scans: m.scans,
        rows_emitted: m.rows_emitted,
        fields_tokenized: m.fields_tokenized,
        fields_via_map: m.fields_via_map,
        fields_via_anchor: m.fields_via_anchor,
        fields_parsed: m.fields_parsed,
        fields_from_cache: m.fields_from_cache,
        bytes_tokenized: m.bytes_tokenized,
        posmap_bytes: aux.posmap_bytes as u64,
        posmap_pointers: aux.posmap_pointers,
        cache_bytes: aux.cache_bytes as u64,
        cache_utilization: aux.cache_utilization,
        stats_attrs: aux.stats_attrs as u64,
        io_ns: prof.io_ns,
        io_bytes: prof.io_bytes,
        tokenize_ns: prof.tokenize_ns,
        tokenize_bytes: prof.tokenize_bytes,
        parse_ns: prof.parse_ns,
        parse_values: prof.parse_values,
        heats,
    })
}

/// Tuning knobs for [`NodbServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queries executing concurrently across all connections.
    /// The `max_inflight + 1`-th concurrent `Execute` gets a `Busy`
    /// frame without touching the engine.
    pub max_inflight: usize,
    /// Maximum concurrently-open client connections; excess dials are
    /// greeted with `Busy` and closed.
    pub max_connections: usize,
    /// How often idle handler threads wake up to check for shutdown.
    /// Bounds shutdown latency for connections that are sitting idle
    /// between statements.
    pub poll_interval: Duration,
    /// Name reported in the `Hello` greeting.
    pub server_name: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_inflight: 8,
            max_connections: 64,
            poll_interval: Duration::from_millis(50),
            server_name: format!("nodb-server {}", env!("CARGO_PKG_VERSION")),
        }
    }
}

/// Monotonic counters describing everything the server did; returned by
/// [`NodbServer::serve`] and snapshotted via [`ServerHandle::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handled.
    pub connections_served: u64,
    /// Connections turned away with `Busy` at the `max_connections` cap.
    pub connections_rejected: u64,
    /// Statements that ran (successfully or not).
    pub queries_executed: u64,
    /// Statements turned away with `Busy` at the `max_inflight` cap.
    pub queries_rejected: u64,
    /// Statements that reached the engine and came back with an error.
    pub queries_failed: u64,
    /// Row streams aborted by a client `Cancel` frame.
    pub queries_cancelled: u64,
}

struct State {
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    max_inflight: usize,
    open_conns: AtomicUsize,
    connections_served: AtomicU64,
    connections_rejected: AtomicU64,
    queries_executed: AtomicU64,
    queries_rejected: AtomicU64,
    queries_failed: AtomicU64,
    queries_cancelled: AtomicU64,
}

impl State {
    fn new(max_inflight: usize) -> State {
        State {
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            max_inflight,
            open_conns: AtomicUsize::new(0),
            connections_served: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            queries_executed: AtomicU64::new(0),
            queries_rejected: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            queries_cancelled: AtomicU64::new(0),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Claim a query permit if one is free. Lock-free: a CAS loop over
    /// the in-flight count against the configured ceiling.
    fn try_acquire(&self) -> bool {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .is_ok()
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            connections_served: self.connections_served.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            queries_rejected: self.queries_rejected.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

/// Where [`ServerHandle::shutdown`] dials to wake a blocked `accept`.
#[derive(Clone)]
enum WakeTarget {
    Tcp(SocketAddr),
    Unix(PathBuf),
}

/// Remote control for a running [`NodbServer`]; cheap to clone and send
/// to other threads.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
    wake: WakeTarget,
}

impl ServerHandle {
    /// Begin graceful shutdown: stop accepting, let idle connections go
    /// with `Goodbye`, and drain in-flight query streams to completion.
    /// Idempotent; returns immediately — join the thread running
    /// [`NodbServer::serve`] to wait for the drain.
    pub fn shutdown(&self) {
        if self.state.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop. If the dial itself fails the listener is
        // already gone, which is exactly the state we wanted.
        match &self.wake {
            WakeTarget::Tcp(addr) => {
                let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
            WakeTarget::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }

    /// Has shutdown been requested?
    pub fn is_shutdown(&self) -> bool {
        self.state.is_shutdown()
    }

    /// Snapshot of the server's counters so far.
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }
}

/// A bound-but-not-yet-serving query server. Construct with
/// [`bind_tcp`](NodbServer::bind_tcp) or
/// [`bind_unix`](NodbServer::bind_unix), grab a [`ServerHandle`], then
/// call [`serve`](NodbServer::serve) (usually on a dedicated thread).
pub struct NodbServer {
    db: Arc<NoDb>,
    config: ServerConfig,
    listener: Listener,
    state: Arc<State>,
    wake: WakeTarget,
}

impl NodbServer {
    /// Bind a TCP listener. `addr` may use port `0` to let the OS pick;
    /// read the result back with [`local_addr`](NodbServer::local_addr).
    pub fn bind_tcp(
        db: Arc<NoDb>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> Result<NodbServer> {
        let listener = TcpListener::bind(addr)?;
        let wake = WakeTarget::Tcp(listener.local_addr()?);
        Ok(NodbServer::assemble(
            db,
            config,
            Listener::Tcp(listener),
            wake,
        ))
    }

    /// Bind a unix-domain socket at `path` (removed on clean shutdown;
    /// a stale socket file from a crashed run is removed first).
    pub fn bind_unix(
        db: Arc<NoDb>,
        path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<NodbServer> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        let wake = WakeTarget::Unix(path.clone());
        Ok(NodbServer::assemble(
            db,
            config,
            Listener::Unix(listener, path),
            wake,
        ))
    }

    fn assemble(
        db: Arc<NoDb>,
        config: ServerConfig,
        listener: Listener,
        wake: WakeTarget,
    ) -> NodbServer {
        let state = Arc::new(State::new(config.max_inflight.max(1)));
        NodbServer {
            db,
            config,
            listener,
            state,
            wake,
        }
    }

    /// The TCP address actually bound, if this is a TCP server.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(..) => None,
        }
    }

    /// A clonable handle for shutdown and stats.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
            wake: self.wake.clone(),
        }
    }

    /// Run the accept loop until [`ServerHandle::shutdown`] is called,
    /// then drain every handler thread and return the final counters.
    pub fn serve(self) -> Result<ServerStats> {
        let NodbServer {
            db,
            config,
            listener,
            state,
            ..
        } = self;
        let config = Arc::new(config);
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();

        loop {
            if state.is_shutdown() {
                break;
            }
            let conn = match &listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    // Frames are written in batches and each request is
                    // a full round-trip; Nagle+delayed-ACK would add
                    // tens of ms per query on loopback.
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                }),
                Listener::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            // Re-check after (possibly) being woken by the self-dial.
            if state.is_shutdown() {
                break;
            }
            let mut conn = match conn {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(NoDbError::Io(e)),
            };

            // Reap finished handler threads so a long soak with many
            // short connections does not accumulate join handles.
            let mut i = 0;
            while i < handlers.len() {
                if handlers[i].is_finished() {
                    let _ = handlers.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }

            if state.open_conns.load(Ordering::Acquire) >= config.max_connections {
                state.connections_rejected.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut conn,
                    &Frame::Busy {
                        message: format!(
                            "server at its {}-connection capacity",
                            config.max_connections
                        ),
                    },
                );
                continue; // dropping `conn` closes it
            }

            state.open_conns.fetch_add(1, Ordering::AcqRel);
            state.connections_served.fetch_add(1, Ordering::Relaxed);
            let db = Arc::clone(&db);
            let state_for_thread = Arc::clone(&state);
            let config_for_thread = Arc::clone(&config);
            handlers.push(std::thread::spawn(move || {
                let _ = handle_connection(&db, &state_for_thread, &config_for_thread, &mut conn);
                state_for_thread.open_conns.fetch_sub(1, Ordering::AcqRel);
            }));
        }

        // Refuse new connections immediately; unix sockets also drop
        // their filesystem entry.
        match listener {
            Listener::Tcp(l) => drop(l),
            Listener::Unix(l, path) => {
                drop(l);
                let _ = std::fs::remove_file(path);
            }
        }

        // Drain: every in-flight cursor runs to completion (or its
        // client hangs up); idle handlers exit at the next poll tick.
        for h in handlers {
            let _ = h.join();
        }
        Ok(state.stats())
    }
}

/// What the polling reader observed while waiting for the next request.
enum Inbound {
    Frame(Frame),
    /// Peer closed cleanly at a frame boundary.
    Eof,
    /// No request pending and the server is shutting down.
    Shutdown,
}

fn read_request(conn: &mut Conn, state: &State) -> Result<Inbound> {
    loop {
        match read_frame_timeout(conn) {
            Ok(Some(f)) => return Ok(Inbound::Frame(f)),
            Ok(None) => return Ok(Inbound::Eof),
            Err(NoDbError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: nothing arrived within the read
                // timeout. `read_frame_timeout` only surfaces this when
                // no bytes of a frame were consumed, so it is safe to
                // spin.
                if state.is_shutdown() {
                    return Ok(Inbound::Shutdown);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(
    db: &NoDb,
    state: &State,
    config: &ServerConfig,
    conn: &mut Conn,
) -> Result<()> {
    conn.set_read_timeout(Some(config.poll_interval))?;
    write_frame(
        conn,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            server: config.server_name.clone(),
        },
    )?;

    // Per-connection prepared-statement cache keyed by SQL text:
    // repeated Executes with the same text skip lex/parse/bind/plan
    // entirely, which is what makes parameterized client loops cheap.
    let mut statements: HashMap<String, Statement<'_>> = HashMap::new();

    loop {
        match read_request(conn, state)? {
            Inbound::Eof => return Ok(()),
            Inbound::Shutdown => {
                let _ = write_frame(conn, &Frame::Goodbye);
                return Ok(());
            }
            Inbound::Frame(Frame::Goodbye) => {
                let _ = write_frame(conn, &Frame::Goodbye);
                return Ok(());
            }
            Inbound::Frame(Frame::Execute { sql, params }) => {
                if !state.try_acquire() {
                    state.queries_rejected.fetch_add(1, Ordering::Relaxed);
                    write_frame(
                        conn,
                        &Frame::Busy {
                            message: format!("{} queries already in flight", state.max_inflight),
                        },
                    )?;
                    continue;
                }
                let outcome = run_statement(db, state, config, &mut statements, conn, sql, params);
                state.release();
                outcome?;
            }
            Inbound::Frame(Frame::Cancel) => {
                // The stream this Cancel aimed at already finished (the
                // client lost the race with Done). Acknowledge anyway so
                // the client's cancel handshake always reads exactly one
                // Cancelled, then carry on.
                write_frame(conn, &Frame::Cancelled { rows: 0 })?;
            }
            Inbound::Frame(Frame::Stats { table }) => {
                // Observability is read-only and cheap (atomic loads and
                // short shared-lock sections), so it bypasses admission
                // control: a saturated server must stay inspectable.
                match collect_stats(db, &table) {
                    Ok(p) => write_frame(conn, &Frame::StatsReport(p))?,
                    Err(e) => write_frame(
                        conn,
                        &Frame::Error {
                            kind: ErrorKind::of(&e),
                            message: e.to_string(),
                        },
                    )?,
                }
            }
            Inbound::Frame(other) => {
                // Server-to-client frames arriving at the server are a
                // protocol violation; answer typed and keep going.
                write_frame(
                    conn,
                    &Frame::Error {
                        kind: ErrorKind::Parse,
                        message: format!("unexpected frame from client: {other:?}"),
                    },
                )?;
            }
        }
    }
}

/// Flush threshold for the row-stream write buffer. Batching keeps
/// syscall counts sane for small rows while still surfacing a client
/// disconnect (failed write → cursor dropped → scan early-stop) within
/// one buffer's worth of rows.
const FLUSH_BYTES: usize = 32 * 1024;

/// Poll for an inbound frame mid-stream without stalling the row flow:
/// a ~1 ms read window at each flush boundary. Returns `true` when the
/// client sent [`Frame::Cancel`]; anything else inbound mid-stream is a
/// protocol violation (requests are not pipelined) and surfaces as an
/// error, which closes the connection.
fn poll_cancel(conn: &mut Conn, config: &ServerConfig) -> Result<bool> {
    conn.set_read_timeout(Some(Duration::from_millis(1)))?;
    let polled = match read_frame_timeout(conn) {
        Ok(Some(Frame::Cancel)) => Ok(true),
        Ok(Some(other)) => Err(NoDbError::parse(format!(
            "unexpected frame mid-stream: {other:?}"
        ))),
        Ok(None) => Err(NoDbError::parse("connection closed mid-stream".to_string())),
        Err(NoDbError::Io(e))
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(false)
        }
        Err(e) => Err(e),
    };
    conn.set_read_timeout(Some(config.poll_interval))?;
    polled
}

#[allow(clippy::too_many_arguments)]
fn run_statement<'db>(
    db: &'db NoDb,
    state: &State,
    config: &ServerConfig,
    statements: &mut HashMap<String, Statement<'db>>,
    conn: &mut Conn,
    sql: String,
    params: Vec<Value>,
) -> Result<()> {
    state.queries_executed.fetch_add(1, Ordering::Relaxed);

    if !statements.contains_key(&sql) {
        match db.prepare(&sql) {
            Ok(stmt) => {
                statements.insert(sql.clone(), stmt);
            }
            Err(e) => {
                state.queries_failed.fetch_add(1, Ordering::Relaxed);
                return write_frame(
                    conn,
                    &Frame::Error {
                        kind: ErrorKind::of(&e),
                        message: e.to_string(),
                    },
                );
            }
        }
    }
    let stmt = statements.get(&sql).expect("statement cached above");

    let params = Params::from(params);
    let cursor = match stmt.execute(&params) {
        Ok(c) => c,
        Err(e) => {
            state.queries_failed.fetch_add(1, Ordering::Relaxed);
            return write_frame(
                conn,
                &Frame::Error {
                    kind: ErrorKind::of(&e),
                    message: e.to_string(),
                },
            );
        }
    };

    let mut buf = Vec::with_capacity(FLUSH_BYTES + 4096);
    schema_frame(cursor.schema()).encode(&mut buf)?;
    let mut rows: u64 = 0;
    // Streaming loop: a failed write (client hung up) propagates `Err`
    // out of this function, dropping `cursor` mid-iteration — which is
    // precisely what stops the underlying raw scan at block granularity.
    // A polite `Cancel` frame takes the same cursor-drop path, but the
    // connection survives: flush what was streamed, acknowledge, return.
    for row in cursor {
        match row {
            Ok(r) => {
                Frame::Row(r).encode(&mut buf)?;
                rows += 1;
                if buf.len() >= FLUSH_BYTES {
                    conn.write_all(&buf)?;
                    buf.clear();
                    if poll_cancel(conn, config)? {
                        state.queries_cancelled.fetch_add(1, Ordering::Relaxed);
                        write_frame(conn, &Frame::Cancelled { rows })?;
                        return Ok(());
                    }
                }
            }
            Err(e) => {
                state.queries_failed.fetch_add(1, Ordering::Relaxed);
                Frame::Error {
                    kind: ErrorKind::of(&e),
                    message: e.to_string(),
                }
                .encode(&mut buf)?;
                conn.write_all(&buf)?;
                return Ok(());
            }
        }
    }
    Frame::Done { rows }.encode(&mut buf)?;
    conn.write_all(&buf)?;
    Ok(())
}
