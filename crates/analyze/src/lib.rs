//! `nodb-analyze`: the workspace invariant linter.
//!
//! NoDB's adaptive auxiliary structures are only correct if a web of
//! cross-crate invariants holds — audited `unsafe` in the mmap byte
//! source, the `RawTableRuntime` lock-acquisition DAG, justified
//! `Relaxed` atomics, panic-free hot paths, checked offset casts, and a
//! single knob registry behind every `NODB_*` env var. This crate is a
//! hand-rolled, dependency-free static-analysis pass that enforces those
//! invariants as a CI gate, with committed allowlists
//! (`analyze/unsafe_audit.toml`, `analyze/waivers.toml`) so every
//! exception is a reviewable diff with a written justification.
//!
//! Lint arms:
//!
//! - **unsafe** — every `unsafe` needs an adjacent `// SAFETY:` comment
//!   and a committed, content-hashed audit entry; deleting an entry (or
//!   editing the unsafe item) fails the run until re-audited.
//! - **lock-order** — acquisitions of the split runtime's locks must
//!   follow the declared DAG `file_len_seen → posmap → cache → stats`.
//! - **atomic-ordering** — `Ordering::Relaxed` outside designated
//!   counter modules needs an `// ORDERING:` justification.
//! - **panic-path** — no `unwrap`/`expect`/panicking macros/fixed-offset
//!   indexing in hot-path modules outside `#[cfg(test)]`.
//! - **cast** — no unexplained narrowing `as` casts in wire-protocol and
//!   positional-map offset arithmetic.
//! - **knob** — every `NODB_*` string literal is a registered knob env
//!   var, and every knob's env var and flag is documented in the README.
//!
//! Run it with `cargo run -p nodb-analyze`; see the README's "Static
//! analysis" section for the waiver workflow.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan_util;
pub mod toml;
pub mod walk;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use config::Config;
use lints::unsafe_audit::AuditEntry;
use report::{Finding, Report};

/// One loaded source file: path (relative to the tree root), raw text,
/// and its lexed view.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the tree root.
    pub rel: PathBuf,
    /// Raw file contents.
    pub src: String,
    /// Masked/structured view from [`lexer::lex`].
    pub lexed: lexer::Lexed,
}

impl SourceFile {
    /// The relative path with `/` separators (allowlist key form).
    pub fn rel_str(&self) -> String {
        self.rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// A waiver from `analyze/waivers.toml`: suppresses findings of `lint`
/// in `file` whose waiver key equals `key`, with a written reason.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Lint arm the waiver applies to.
    pub lint: String,
    /// File (relative, `/`-separated) the waiver applies to.
    pub file: String,
    /// Content-addressed key (trimmed source line, or env-var name for
    /// the knob arm) — line numbers drift, content doesn't.
    pub key: String,
    /// Why the finding is acceptable. Must be non-empty.
    pub justification: String,
    /// Line of the entry in the waiver file.
    pub toml_line: usize,
}

/// Load every `.rs` file the policy covers.
pub fn load_sources(cfg: &Config) -> Result<Vec<SourceFile>, String> {
    let subdirs: Vec<&str> = cfg.subdirs.iter().map(|s| s.as_str()).collect();
    let rels = walk::rust_files(&cfg.root, &subdirs)
        .map_err(|e| format!("walking {}: {e}", cfg.root.display()))?;
    let mut out = Vec::with_capacity(rels.len());
    for rel in rels {
        let path = cfg.root.join(&rel);
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let lexed = lexer::lex(&src);
        out.push(SourceFile { rel, src, lexed });
    }
    Ok(out)
}

/// Parse the committed unsafe audit file (absent file = no entries).
pub fn load_audit(path: &Path) -> Result<Vec<AuditEntry>, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(Vec::new());
    };
    let entries = toml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for e in entries {
        if e.section != "unsafe" {
            return Err(format!(
                "{}: line {}: unknown section `[[{}]]` (expected `[[unsafe]]`)",
                path.display(),
                e.line,
                e.section
            ));
        }
        out.push(AuditEntry {
            file: e.require("file").map_err(|p| p.to_string())?.to_string(),
            hash: e.require("hash").map_err(|p| p.to_string())?.to_string(),
            item: e.require("item").map_err(|p| p.to_string())?.to_string(),
            justification: e
                .require("justification")
                .map_err(|p| p.to_string())?
                .to_string(),
            toml_line: e.line,
        });
    }
    Ok(out)
}

/// Parse the committed waiver file (absent file = no waivers).
pub fn load_waivers(path: &Path) -> Result<Vec<Waiver>, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(Vec::new());
    };
    let entries = toml::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for e in entries {
        if e.section != "waiver" {
            return Err(format!(
                "{}: line {}: unknown section `[[{}]]` (expected `[[waiver]]`)",
                path.display(),
                e.line,
                e.section
            ));
        }
        out.push(Waiver {
            lint: e.require("lint").map_err(|p| p.to_string())?.to_string(),
            file: e.require("file").map_err(|p| p.to_string())?.to_string(),
            key: e.require("key").map_err(|p| p.to_string())?.to_string(),
            justification: e
                .require("justification")
                .map_err(|p| p.to_string())?
                .to_string(),
            toml_line: e.line,
        });
    }
    Ok(out)
}

/// The lint arm names accepted by `--lint`.
pub const LINT_NAMES: &[&str] = &[
    "unsafe",
    "lock-order",
    "atomic-ordering",
    "panic-path",
    "cast",
    "knob",
];

/// Run the configured lints over the tree and apply waivers.
///
/// `only`: restrict to a subset of [`LINT_NAMES`] (empty = all).
pub fn run(cfg: &Config, only: &[String]) -> Result<Report, String> {
    let files = load_sources(cfg)?;
    let audit = load_audit(&cfg.root.join(&cfg.audit_path))?;
    let waivers = load_waivers(&cfg.root.join(&cfg.waivers_path))?;
    let enabled = |name: &str| only.is_empty() || only.iter().any(|o| o == name);

    let mut findings: Vec<Finding> = Vec::new();

    if enabled("unsafe") {
        findings.extend(lints::unsafe_audit::run(
            &files,
            &audit,
            &cfg.audit_path.to_string_lossy(),
        ));
    }
    if enabled("lock-order") {
        for sf in &files {
            let rel = sf.rel_str();
            if cfg
                .lock_prefixes
                .iter()
                .any(|p| rel.starts_with(p.as_str()))
            {
                findings.extend(lints::lock_order::run(sf, &cfg.lock_dag));
            }
        }
    }
    if enabled("atomic-ordering") {
        for sf in &files {
            let rel = sf.rel_str();
            if rel.starts_with("tests/") || rel.contains("/tests/") {
                continue; // test code is exempt, like #[cfg(test)]
            }
            if cfg.atomic_designated.iter().any(|(f, _)| *f == rel) {
                continue;
            }
            findings.extend(lints::atomic_order::run(sf));
        }
    }
    if enabled("panic-path") {
        for sf in &files {
            if cfg.hot_files.iter().any(|f| *f == sf.rel_str()) {
                findings.extend(lints::panic_path::run(sf));
            }
        }
    }
    if enabled("cast") {
        for sf in &files {
            if cfg.cast_files.iter().any(|f| *f == sf.rel_str()) {
                findings.extend(lints::cast_check::run(sf));
            }
        }
    }
    if enabled("knob") {
        findings.extend(lints::knob_check::run(&files, cfg));
    }

    // Apply waivers: content-addressed, per lint arm and file. A waiver
    // with an empty justification is itself a finding, as is a waiver
    // that no longer matches anything (stale waivers must be deleted,
    // keeping the allowlist an honest record of current exceptions).
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for f in findings {
        let matched = f.waiver_key.as_ref().and_then(|key| {
            waivers.iter().position(|w| {
                w.lint == f.lint
                    && f.file.to_string_lossy().replace('\\', "/") == w.file
                    && w.key == *key
            })
        });
        match matched {
            Some(idx) if !waivers[idx].justification.trim().is_empty() => {
                used.insert(idx);
                report.waived.push((f, waivers[idx].justification.clone()));
            }
            _ => report.findings.push(f),
        }
    }
    for (idx, w) in waivers.iter().enumerate() {
        if w.justification.trim().is_empty() {
            report.findings.push(Finding {
                lint: "waiver",
                file: cfg.waivers_path.clone(),
                line: w.toml_line,
                message: format!(
                    "waiver for [{}] {} (key `{}`) has an empty justification",
                    w.lint, w.file, w.key
                ),
                waiver_key: None,
            });
        } else if !used.contains(&idx) && (only.is_empty() || only.contains(&w.lint)) {
            report.findings.push(Finding {
                lint: "waiver",
                file: cfg.waivers_path.clone(),
                line: w.toml_line,
                message: format!(
                    "stale waiver: no [{}] finding in {} matches key `{}` — delete it",
                    w.lint, w.file, w.key
                ),
                waiver_key: None,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (a.lint, &a.file, a.line).cmp(&(b.lint, &b.file, b.line)));
    Ok(report)
}

/// Render TOML audit-entry templates for every currently unaudited
/// `unsafe` site (the `--print-unsafe-entries` mode).
pub fn unsafe_entry_templates(cfg: &Config) -> Result<String, String> {
    let files = load_sources(cfg)?;
    let audit = load_audit(&cfg.root.join(&cfg.audit_path))?;
    let mut out = String::new();
    for sf in &files {
        for site in lints::unsafe_audit::sites(sf) {
            let covered = audit
                .iter()
                .any(|e| e.file == site.file && e.hash == site.hash);
            if !covered {
                out.push_str(&format!(
                    "[[unsafe]]\nfile = {}\nhash = {}\nitem = {}\njustification = \"\"\n\n",
                    toml::quote(&site.file),
                    toml::quote(&site.hash),
                    toml::quote(&site.snippet),
                ));
            }
        }
    }
    Ok(out)
}
