//! Buffered JSON Lines writing (the inverse of the tokenizer).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use nodb_common::{NoDbError, Result, Row, Schema, Value};

/// Physical layout options for written JSONL files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlOptions {
    /// Leave NULL attributes out of the object entirely instead of
    /// writing an explicit `"key": null` — both decode to SQL NULL, and
    /// the differential tests exercise the two layouts against each
    /// other.
    pub omit_nulls: bool,
}

/// A buffered writer producing one JSON object per line, keyed by the
/// schema's field names.
pub struct JsonlWriter {
    out: BufWriter<File>,
    keys: Vec<String>,
    omit_nulls: bool,
    rows: u64,
    buf: String,
}

impl JsonlWriter {
    /// Create (truncate) `path` for writing rows of `schema`.
    pub fn create(path: &Path, schema: &Schema, opts: JsonlOptions) -> Result<JsonlWriter> {
        Self::from_file(File::create(path)?, schema, opts)
    }

    /// Open `path` for appending (the external-update scenario, §4.5).
    pub fn append(path: &Path, schema: &Schema, opts: JsonlOptions) -> Result<JsonlWriter> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        Self::from_file(file, schema, opts)
    }

    fn from_file(file: File, schema: &Schema, opts: JsonlOptions) -> Result<JsonlWriter> {
        Ok(JsonlWriter {
            out: BufWriter::with_capacity(1 << 20, file),
            keys: schema.fields().iter().map(|f| f.name.clone()).collect(),
            omit_nulls: opts.omit_nulls,
            rows: 0,
            buf: String::new(),
        })
    }

    /// Write one row; its values must match the schema arity.
    pub fn write_row(&mut self, row: &Row) -> Result<()> {
        if row.values().len() != self.keys.len() {
            return Err(NoDbError::internal(format!(
                "row has {} values, schema declares {} fields",
                row.values().len(),
                self.keys.len()
            )));
        }
        self.buf.clear();
        self.buf.push('{');
        let mut first = true;
        for (k, v) in self.keys.iter().zip(row.values()) {
            if v.is_null() && self.omit_nulls {
                continue;
            }
            if !first {
                self.buf.push(',');
            }
            first = false;
            write_json_string(&mut self.buf, k);
            self.buf.push(':');
            write_json_value(&mut self.buf, v);
        }
        self.buf.push_str("}\n");
        self.out.write_all(self.buf.as_bytes())?;
        self.rows += 1;
        Ok(())
    }

    /// Rows written so far.
    pub fn rows_written(&self) -> u64 {
        self.rows
    }

    /// Flush buffered output.
    pub fn finish(mut self) -> Result<u64> {
        self.out.flush()?;
        Ok(self.rows)
    }
}

/// Render one value as a JSON token whose text coerces back to the same
/// [`Value`] via the tokenizer + `Value::parse_field`.
fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int32(_) | Value::Int64(_) => out.push_str(&v.to_csv_field()),
        Value::Float64(f) if f.is_finite() => out.push_str(&v.to_csv_field()),
        // Non-finite floats are not JSON numbers; their text form (which
        // `parse_field` reads back) goes into a string.
        Value::Float64(_) => write_json_string(out, &v.to_csv_field()),
        Value::Text(s) => write_json_string(out, s),
        Value::Date(d) => write_json_string(out, &d.to_string()),
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::{Date, TempDir};

    fn schema() -> Schema {
        Schema::parse("id int, note text, score double, day date, ok bool").unwrap()
    }

    #[test]
    fn writes_one_object_per_line() {
        let td = TempDir::new("nodb-json").unwrap();
        let p = td.file("w.jsonl");
        let mut w = JsonlWriter::create(&p, &schema(), JsonlOptions::default()).unwrap();
        w.write_row(&Row(vec![
            Value::Int32(1),
            Value::Text("a\"b".into()),
            Value::Float64(2.5),
            Value::Date(Date::parse("1996-03-13").unwrap()),
            Value::Bool(true),
        ]))
        .unwrap();
        w.write_row(&Row(vec![
            Value::Int32(2),
            Value::Null,
            Value::Float64(4.0),
            Value::Null,
            Value::Bool(false),
        ]))
        .unwrap();
        assert_eq!(w.finish().unwrap(), 2);
        let text = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"id\":1,\"note\":\"a\\\"b\",\"score\":2.5,\"day\":\"1996-03-13\",\"ok\":true}"
        );
        assert_eq!(
            lines[1],
            "{\"id\":2,\"note\":null,\"score\":4.0,\"day\":null,\"ok\":false}"
        );
    }

    #[test]
    fn omit_nulls_drops_keys() {
        let td = TempDir::new("nodb-json").unwrap();
        let p = td.file("w.jsonl");
        let s = Schema::parse("a int, b int").unwrap();
        let mut w = JsonlWriter::create(&p, &s, JsonlOptions { omit_nulls: true }).unwrap();
        w.write_row(&Row(vec![Value::Null, Value::Int32(7)]))
            .unwrap();
        w.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "{\"b\":7}\n");
    }

    #[test]
    fn append_extends_existing_file() {
        let td = TempDir::new("nodb-json").unwrap();
        let p = td.file("w.jsonl");
        let s = Schema::parse("a int").unwrap();
        {
            let mut w = JsonlWriter::create(&p, &s, JsonlOptions::default()).unwrap();
            w.write_row(&Row(vec![Value::Int32(1)])).unwrap();
            w.finish().unwrap();
        }
        {
            let mut w = JsonlWriter::append(&p, &s, JsonlOptions::default()).unwrap();
            w.write_row(&Row(vec![Value::Int32(2)])).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(
            std::fs::read_to_string(&p).unwrap(),
            "{\"a\":1}\n{\"a\":2}\n"
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let td = TempDir::new("nodb-json").unwrap();
        let p = td.file("w.jsonl");
        let s = Schema::parse("a int, b int").unwrap();
        let mut w = JsonlWriter::create(&p, &s, JsonlOptions::default()).unwrap();
        assert!(w.write_row(&Row(vec![Value::Int32(1)])).is_err());
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\u{1}b\tc");
        assert_eq!(out, "\"a\\u0001b\\tc\"");
    }
}
