//! The **adaptive positional map** (NoDB paper, §4.2).
//!
//! The positional map is the paper's central innovation: an incrementally
//! built index of *where attributes live inside a raw file*, so that later
//! queries can jump (close) to the values they need instead of re-tokenizing
//! every tuple from the start of its line.
//!
//! Faithful properties implemented here:
//!
//! * **Populated as a side effect** of tokenization — the scan feeds
//!   positions it had to compute anyway ([`BlockCollector`]).
//! * **Chunked storage, partitioned vertically and horizontally** — a
//!   [`chunk::Chunk`] covers one *block* of consecutive tuples × one set of
//!   attributes; attributes queried together live in the same chunk
//!   ("keeping in the same chunk attributes accessed together").
//! * **Relative positions** — offsets are stored relative to the tuple's
//!   line start, in 16-bit form when lines are short enough (the paper's
//!   storage-reduction point).
//! * **Attribute-order directory** — [`PositionalMap::fetch_block`]
//!   resolves, per attribute, either an exact position array or the
//!   *nearest indexed attribute* to anchor incremental forward/backward
//!   tokenization.
//! * **Pre-fetching into a temporary map** — [`BlockView`] is exactly the
//!   paper's per-query temporary map: all positional information a query
//!   needs for a batch, precomputed, then dropped.
//! * **Storage threshold + LRU** — [`PosMapConfig::budget`]; evicted
//!   chunks can be **spilled to disk** and transparently reloaded.
//! * **Droppable** — the map is auxiliary state; [`PositionalMap::clear`]
//!   loses no critical information.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod eol;
pub mod map;

pub use chunk::{BlockCollector, Chunk, OffsetStore, SegmentCollector};
pub use eol::EolIndex;
pub use map::{AttrPositions, BlockView, MapStats, PosMapConfig, PositionalMap};
