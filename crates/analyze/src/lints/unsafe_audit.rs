//! Unsafe audit: every `unsafe` keyword in the tree needs an adjacent
//! `// SAFETY:` comment *and* a committed entry in
//! `analyze/unsafe_audit.toml` keyed by file + content hash of the
//! unsafe item. New or modified unsafe cannot land without a reviewable
//! allowlist diff; deleting an entry makes the run fail.

use std::collections::BTreeSet;

use crate::report::Finding;
use crate::scan_util::{fnv64_normalized, line_of};
use crate::SourceFile;

/// One committed audit entry.
#[derive(Debug, Clone)]
pub struct AuditEntry {
    /// File the unsafe item lives in (relative path, `/`-separated).
    pub file: String,
    /// `fnv64:…` content hash of the item.
    pub hash: String,
    /// Short description of the item.
    pub item: String,
    /// Why the unsafe is sound. Must be non-empty.
    pub justification: String,
    /// Line of the entry in the audit file (for findings).
    pub toml_line: usize,
}

/// One live `unsafe` occurrence found in the tree.
#[derive(Debug)]
pub struct UnsafeSite {
    /// File (relative, `/`-separated).
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// `fnv64:…` content hash of the item.
    pub hash: String,
    /// First line of the item, for audit-entry templates.
    pub snippet: String,
}

/// Find every `unsafe` keyword (as a code token — comments and strings
/// are masked) and hash the item it introduces: from the start of the
/// keyword's line to the matching close of the first brace after it (or
/// the terminating `;` for a bodiless form).
pub fn sites(sf: &SourceFile) -> Vec<UnsafeSite> {
    let mask = sf.lexed.mask.as_bytes();
    let src = sf.src.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = sf.lexed.mask[from..].find("unsafe") {
        let at = from + pos;
        from = at + "unsafe".len();
        let before_ok = at == 0 || !is_word(mask[at - 1]);
        let after_ok = from >= mask.len() || !is_word(mask[from]);
        if !before_ok || !after_ok {
            continue; // `unsafe_code` and friends
        }
        let line = line_of(&sf.lexed.mask, at);
        // Span start: beginning of the keyword's line.
        let span_start = sf.lexed.mask[..at].rfind('\n').map(|p| p + 1).unwrap_or(0);
        // Span end: matching close of the first `{` after the keyword,
        // or the first `;` if one comes before any brace.
        let mut depth = 0usize;
        let mut end = mask.len();
        for (k, &b) in mask.iter().enumerate().skip(at) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
        }
        let hash = format!("fnv64:{:016x}", fnv64_normalized(&src[span_start..end]));
        let snippet = sf
            .src
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        out.push(UnsafeSite {
            file: sf.rel_str(),
            line,
            hash,
            snippet,
        });
    }
    out
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Run the audit over all files against the committed entries.
pub fn run(files: &[SourceFile], entries: &[AuditEntry], audit_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for sf in files {
        let safety_lines: BTreeSet<usize> =
            sf.lexed.comment_lines_with("SAFETY:").into_iter().collect();
        for site in sites(sf) {
            // Adjacency: a SAFETY: comment on the keyword's line or
            // within the 5 lines above it.
            let has_comment =
                (site.line.saturating_sub(5)..=site.line).any(|l| safety_lines.contains(&l));
            if !has_comment {
                findings.push(Finding {
                    lint: "unsafe",
                    file: sf.rel.clone(),
                    line: site.line,
                    message: format!(
                        "`unsafe` without an adjacent `// SAFETY:` comment \
                         (within 5 lines above): {}",
                        site.snippet
                    ),
                    waiver_key: None,
                });
            }
            match entries
                .iter()
                .position(|e| e.file == site.file && e.hash == site.hash)
            {
                Some(idx) => {
                    used.insert(idx);
                }
                None => findings.push(Finding {
                    lint: "unsafe",
                    file: sf.rel.clone(),
                    line: site.line,
                    message: format!(
                        "unaudited `unsafe` (content hash {}): {} — audit it and add \
                         a justified entry to {audit_path} (run with \
                         --print-unsafe-entries for a template)",
                        site.hash, site.snippet
                    ),
                    waiver_key: None,
                }),
            }
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if e.justification.trim().is_empty() {
            findings.push(Finding {
                lint: "unsafe",
                file: audit_path.into(),
                line: e.toml_line,
                message: format!(
                    "audit entry for {} ({}) has an empty justification",
                    e.file, e.hash
                ),
                waiver_key: None,
            });
        }
        if !used.contains(&idx) {
            findings.push(Finding {
                lint: "unsafe",
                file: audit_path.into(),
                line: e.toml_line,
                message: format!(
                    "stale audit entry: no `unsafe` in {} has hash {} — the item \
                     was removed or modified; re-audit and update the entry",
                    e.file, e.hash
                ),
                waiver_key: None,
            });
        }
    }
    findings
}
