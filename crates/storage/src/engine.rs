//! The loaded-table engine: bulk loader + heap scans behind
//! [`TableProvider`], with profiles emulating the paper's comparators.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nodb_common::{NoDbError, Result, Row, Schema, Value};
use nodb_csv::lines::LineReader;
use nodb_csv::tokenize;
use nodb_csv::CsvOptions;
use nodb_exec::{eval_predicate, BoxOp, Operator, TableProvider};
use nodb_sql::BoundExpr;

use crate::bufpool::BufferPool;
use crate::heap::{HeapFile, HeapWriter, TAG_OVERFLOW};
use crate::page::{self, Page};
use crate::tuple;

/// Which comparator a loaded engine emulates. The differences are
/// mechanical design choices, not tuning constants — see DESIGN.md §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineProfile {
    /// PostgreSQL-like: 24-byte tuple headers (MVCC bookkeeping),
    /// tuple-at-a-time evaluation.
    PostgresLike,
    /// MySQL-like: 16-byte headers, but every tuple is copied through a
    /// storage-engine → server row-format conversion on read.
    MySqlLike,
    /// Commercial "DBMS X"-like: compact 8-byte headers and page-at-a-time
    /// batch decoding (fastest reads), at the price of a second
    /// verification/metadata pass during loading (slowest load).
    DbmsXLike,
}

impl EngineProfile {
    /// Per-tuple header padding written at load time.
    pub fn tuple_header_bytes(self) -> usize {
        match self {
            EngineProfile::PostgresLike => 24,
            EngineProfile::MySqlLike => 16,
            EngineProfile::DbmsXLike => 8,
        }
    }

    /// Human-readable name used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            EngineProfile::PostgresLike => "PostgreSQL",
            EngineProfile::MySqlLike => "MySQL",
            EngineProfile::DbmsXLike => "DBMS X",
        }
    }
}

/// What a bulk load cost.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Rows loaded.
    pub rows: u64,
    /// Heap pages written.
    pub pages: u32,
    /// Bytes on disk (heap + overflow).
    pub bytes_on_disk: u64,
    /// Rows that exceeded the page size and went to the overflow file.
    pub overflow_rows: u64,
    /// Wall-clock duration of the load.
    pub duration: Duration,
}

/// One loaded table: schema + heap + shared buffer pool.
pub struct LoadedTable {
    id: u32,
    schema: Schema,
    heap: HeapFile,
    profile: EngineProfile,
    pool: Arc<Mutex<BufferPool>>,
}

impl LoadedTable {
    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows stored.
    pub fn n_rows(&self) -> u64 {
        self.heap.n_rows()
    }
}

/// A loaded-mode engine instance: loads CSV files into heap tables and
/// serves scans over them.
pub struct StorageEngine {
    profile: EngineProfile,
    dir: PathBuf,
    pool: Arc<Mutex<BufferPool>>,
    tables: HashMap<String, Arc<LoadedTable>>,
    next_id: u32,
}

impl StorageEngine {
    /// Create an engine storing heap files under `dir`, with a buffer
    /// pool of `pool_pages` pages.
    pub fn new(dir: &Path, profile: EngineProfile, pool_pages: usize) -> Result<StorageEngine> {
        std::fs::create_dir_all(dir)?;
        Ok(StorageEngine {
            profile,
            dir: dir.to_path_buf(),
            pool: Arc::new(Mutex::new(BufferPool::new(pool_pages))),
            tables: HashMap::new(),
            next_id: 0,
        })
    }

    /// The engine's profile.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Bulk-load a raw file into a heap table — the up-front cost the
    /// NoDB philosophy eliminates. Parses and converts *every* field of
    /// *every* tuple, encodes binary tuples and writes slotted pages.
    pub fn load_csv(
        &mut self,
        name: &str,
        csv_path: &Path,
        schema: &Schema,
        opts: CsvOptions,
    ) -> Result<LoadReport> {
        let start = Instant::now();
        let heap_path = self.dir.join(format!("{name}.heap"));
        let mut writer = HeapWriter::create(&heap_path)?;
        let mut reader = LineReader::open(csv_path)?;
        let mut line = Vec::new();
        let mut starts: Vec<u32> = Vec::new();
        let mut encoded = Vec::new();
        let mut row = Row::with_capacity(schema.len());
        let header_bytes = self.profile.tuple_header_bytes();
        let mut first = opts.has_header;
        while reader.next_line(&mut line)?.is_some() {
            if first {
                first = false;
                continue;
            }
            starts.clear();
            tokenize::tokenize_all(&line, opts.delimiter, &mut starts);
            if starts.len() < schema.len() {
                return Err(NoDbError::parse(format!(
                    "row has {} fields, schema expects {}",
                    starts.len(),
                    schema.len()
                )));
            }
            row.0.clear();
            for (i, f) in schema.fields().iter().enumerate() {
                let bytes = tokenize::field_at(&line, opts.delimiter, starts[i]);
                row.0.push(Value::parse_field(bytes, f.dtype)?);
            }
            tuple::encode(&row, schema, header_bytes, &mut encoded)?;
            writer.append(&encoded)?;
        }
        let heap = writer.finish()?;

        if self.profile == EngineProfile::DbmsXLike {
            // Second pass at load time: verify pages and build per-page
            // metadata (the kind of extra work that buys the commercial
            // engine its faster scans).
            let mut checksum = 0u64;
            for p in 0..heap.n_pages() {
                let bytes = heap.read_page(p)?;
                let page = Page::from_bytes(bytes);
                for s in 0..page.n_slots() {
                    for &b in page.tuple(s) {
                        checksum = checksum.wrapping_mul(31).wrapping_add(b as u64);
                    }
                }
            }
            std::hint::black_box(checksum);
        }

        let report = LoadReport {
            rows: heap.n_rows(),
            pages: heap.n_pages(),
            bytes_on_disk: heap.bytes_on_disk()?,
            overflow_rows: heap.overflow_rows(),
            duration: start.elapsed(),
        };
        let id = self.next_id;
        self.next_id += 1;
        self.tables.insert(
            name.to_string(),
            Arc::new(LoadedTable {
                id,
                schema: schema.clone(),
                heap,
                profile: self.profile,
                pool: Arc::clone(&self.pool),
            }),
        );
        Ok(report)
    }

    /// Get a loaded table.
    pub fn table(&self, name: &str) -> Result<Arc<LoadedTable>> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| NoDbError::catalog(format!("table `{name}` is not loaded")))
    }

    /// Drop a loaded table: forget it, delete its heap file from disk
    /// and release the pooled pages. Scans already running keep their
    /// shared handle (and, on unix, their open file) and finish
    /// normally; table ids are never reused, so their pooled pages can
    /// never be confused with a later table's.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let table = self
            .tables
            .remove(name)
            .ok_or_else(|| NoDbError::catalog(format!("table `{name}` is not loaded")))?;
        drop(table);
        // The heap and its sibling overflow file (HeapWriter::create
        // always makes both; wide rows may put most bytes in the
        // latter).
        for ext in ["heap", "ovf"] {
            let path = self.dir.join(format!("{name}.{ext}"));
            match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Drop the buffer pool contents (cold-cache experiment setting).
    pub fn clear_buffers(&self) {
        self.pool.lock().clear();
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> crate::bufpool::PoolStats {
        self.pool.lock().stats()
    }
}

impl TableProvider for LoadedTable {
    fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp> {
        Ok(Box::new(HeapScanOp {
            table_id: self.id,
            schema: self.schema.clone(),
            file: self.heap.open_reader()?,
            heap: self.heap.clone(),
            profile: self.profile,
            pool: Arc::clone(&self.pool),
            projection: projection.to_vec(),
            filters: filters.to_vec(),
            n_pages: self.heap.n_pages(),
            page_no: 0,
            slot: 0,
            current: None,
            batch: Vec::new(),
            batch_pos: 0,
            scratch: Vec::new(),
            tuple_buf: Vec::new(),
        }))
    }
}

struct HeapScanOp {
    table_id: u32,
    schema: Schema,
    /// Reused read handle (one open per scan, not per page).
    file: std::fs::File,
    heap: HeapFile,
    profile: EngineProfile,
    pool: Arc<Mutex<BufferPool>>,
    projection: Vec<usize>,
    filters: Vec<BoundExpr>,
    n_pages: u32,
    page_no: u32,
    slot: usize,
    current: Option<Arc<Vec<u8>>>,
    /// DBMS-X-style page batch.
    batch: Vec<Row>,
    batch_pos: usize,
    /// MySQL-style row-format conversion buffer.
    scratch: Vec<u8>,
    /// Per-tuple copy buffer (tuples must be owned across the overflow
    /// read path).
    tuple_buf: Vec<u8>,
}

impl HeapScanOp {
    fn decode(&mut self, t: &[u8]) -> Result<Row> {
        let header = self.profile.tuple_header_bytes();
        let body: &[u8];
        let owned;
        if t[0] == TAG_OVERFLOW {
            let offset = u64::from_le_bytes(
                t[1..9]
                    .try_into()
                    .map_err(|_| NoDbError::internal("bad overflow ref"))?,
            );
            let len = u32::from_le_bytes(
                t[9..13]
                    .try_into()
                    .map_err(|_| NoDbError::internal("bad overflow ref"))?,
            );
            owned = self.heap.read_overflow(offset, len)?;
            body = &owned;
        } else {
            body = &t[1..];
        }
        if self.profile == EngineProfile::MySqlLike {
            // Storage-engine → server format conversion: a real copy of
            // the row bytes before decoding.
            self.scratch.clear();
            self.scratch.extend_from_slice(body);
            return tuple::decode_projected(
                &std::mem::take(&mut self.scratch),
                &self.schema,
                header,
                &self.projection,
            );
        }
        tuple::decode_projected(body, &self.schema, header, &self.projection)
    }

    fn passes(&self, row: &Row) -> Result<bool> {
        for f in &self.filters {
            if !eval_predicate(f, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl Operator for HeapScanOp {
    fn next_row(&mut self) -> Result<Option<Row>> {
        loop {
            // DBMS-X batch path: drain decoded page batch first.
            if self.batch_pos < self.batch.len() {
                let row = std::mem::take(&mut self.batch[self.batch_pos]);
                self.batch_pos += 1;
                if self.passes(&row)? {
                    return Ok(Some(row));
                }
                continue;
            }
            // Need (more of) a page. Pages are pinned once (Arc) and read
            // through zero-copy views; only individual tuples are copied
            // out (they may reference the overflow file).
            if self.current.is_none() {
                if self.page_no >= self.n_pages {
                    return Ok(None);
                }
                let key = (self.table_id, self.page_no);
                let file = &mut self.file;
                let page_no = self.page_no;
                let bytes = self
                    .pool
                    .lock()
                    .get(key, || crate::heap::read_page_with(file, page_no))?;
                self.current = Some(bytes);
                self.slot = 0;
                if self.profile == EngineProfile::DbmsXLike {
                    // Decode the whole page at once.
                    let bytes = self.current.take().expect("just set");
                    self.batch.clear();
                    self.batch_pos = 0;
                    for s in 0..page::n_slots_of(&bytes) {
                        self.tuple_buf.clear();
                        self.tuple_buf.extend_from_slice(page::tuple_of(&bytes, s));
                        let t = std::mem::take(&mut self.tuple_buf);
                        let row = self.decode(&t)?;
                        self.tuple_buf = t;
                        self.batch.push(row);
                    }
                    self.page_no += 1;
                    continue;
                }
            }
            let bytes = self.current.as_ref().expect("page loaded");
            if self.slot >= page::n_slots_of(bytes) {
                self.current = None;
                self.page_no += 1;
                continue;
            }
            self.tuple_buf.clear();
            self.tuple_buf
                .extend_from_slice(page::tuple_of(bytes, self.slot));
            self.slot += 1;
            let t = std::mem::take(&mut self.tuple_buf);
            let row = self.decode(&t)?;
            self.tuple_buf = t;
            if self.passes(&row)? {
                return Ok(Some(row));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_common::TempDir;
    use nodb_csv::MicroGen;
    use nodb_exec::run_to_vec;
    use nodb_sql::BinOp;

    fn setup(profile: EngineProfile) -> (TempDir, StorageEngine, Schema) {
        let td = TempDir::new("nodb-storage").unwrap();
        let csv = td.file("micro.csv");
        let spec = MicroGen::default().rows(500).cols(8).seed(11);
        spec.write_to(&csv).unwrap();
        let schema = spec.schema();
        let mut eng = StorageEngine::new(&td.path().join("db"), profile, 256).unwrap();
        let report = eng
            .load_csv("micro", &csv, &schema, CsvOptions::default())
            .unwrap();
        assert_eq!(report.rows, 500);
        (td, eng, schema)
    }

    #[test]
    fn load_and_scan_roundtrip_all_profiles() {
        let mut reference: Option<Vec<Row>> = None;
        for profile in [
            EngineProfile::PostgresLike,
            EngineProfile::MySqlLike,
            EngineProfile::DbmsXLike,
        ] {
            let (_td, eng, schema) = setup(profile);
            let t = eng.table("micro").unwrap();
            let proj: Vec<usize> = (0..schema.len()).collect();
            let rows = run_to_vec(t.scan(&proj, &[]).unwrap()).unwrap();
            assert_eq!(rows.len(), 500);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "profile {profile:?} disagrees"),
            }
        }
    }

    #[test]
    fn scan_applies_projection_and_filters() {
        let (_td, eng, _schema) = setup(EngineProfile::PostgresLike);
        let t = eng.table("micro").unwrap();
        // Project columns 2 and 5; filter on projected ordinal 0 (= col 2).
        let filter = BoundExpr::Binary {
            op: BinOp::Lt,
            left: Box::new(BoundExpr::Col(0)),
            right: Box::new(BoundExpr::Lit(Value::Int64(500_000_000))),
        };
        let rows = run_to_vec(t.scan(&[2, 5], &[filter]).unwrap()).unwrap();
        assert!(!rows.is_empty());
        assert!(rows.len() < 500);
        for r in &rows {
            assert_eq!(r.len(), 2);
            assert!(r.get(0).as_i64().unwrap() < 500_000_000);
        }
    }

    #[test]
    fn pool_serves_repeat_scans_from_memory() {
        let (_td, eng, schema) = setup(EngineProfile::PostgresLike);
        let t = eng.table("micro").unwrap();
        let proj: Vec<usize> = (0..schema.len()).collect();
        run_to_vec(t.scan(&proj, &[]).unwrap()).unwrap();
        let misses_after_first = eng.pool_stats().misses;
        run_to_vec(t.scan(&proj, &[]).unwrap()).unwrap();
        assert_eq!(
            eng.pool_stats().misses,
            misses_after_first,
            "second scan must be all hits"
        );
        eng.clear_buffers();
        run_to_vec(t.scan(&proj, &[]).unwrap()).unwrap();
        assert!(eng.pool_stats().misses > misses_after_first);
    }

    #[test]
    fn wide_rows_take_overflow_path() {
        let td = TempDir::new("nodb-storage").unwrap();
        let csv = td.file("wide.csv");
        // 150 attrs × 64 chars ≈ 9.7 KB per row > 8 KB page.
        let spec = MicroGen::default().rows(20).cols(150).pad_width(64).seed(3);
        spec.write_to(&csv).unwrap();
        let schema = spec.schema();
        let mut eng =
            StorageEngine::new(&td.path().join("db"), EngineProfile::PostgresLike, 64).unwrap();
        let report = eng
            .load_csv("wide", &csv, &schema, CsvOptions::default())
            .unwrap();
        assert_eq!(report.overflow_rows, 20, "every row must overflow");
        let t = eng.table("wide").unwrap();
        let rows = run_to_vec(t.scan(&[0, 149], &[]).unwrap()).unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].get(0).as_str().unwrap().len(), 64);
    }

    #[test]
    fn unknown_table_errors() {
        let (_td, eng, _schema) = setup(EngineProfile::PostgresLike);
        assert!(eng.table("nope").is_err());
    }
}
