//! A small blocking client for the NoDB wire protocol.
//!
//! Used by the CLI's `\connect` mode and by the soak tests. One
//! [`NodbClient`] is one connection; it is *not* `Sync` — concurrency
//! comes from opening more connections, which is exactly what the
//! server's admission control is there to meter.

use std::io::Write;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use nodb_common::{NoDbError, Result, Row, Schema, Value};
use nodb_core::QueryResult;

use crate::conn::Conn;
use crate::protocol::{
    read_frame, schema_of_columns, write_frame, Frame, StatsPayload, PROTOCOL_VERSION,
};

/// Blocking connection to a running `nodb-server`.
pub struct NodbClient {
    conn: Conn,
    server: String,
    /// Set when a [`RowStream`] was dropped mid-stream: the socket was
    /// severed to propagate the cancellation, so the connection cannot
    /// be reused.
    poisoned: bool,
}

impl NodbClient {
    /// Connect to `target`: either `host:port` for TCP or `unix:PATH`
    /// for a unix-domain socket. Waits for the server's `Hello`; a
    /// `Busy` greeting (connection cap reached) surfaces as
    /// [`NoDbError::Busy`].
    pub fn connect(target: &str) -> Result<NodbClient> {
        let conn = match target.strip_prefix("unix:") {
            Some(path) => Conn::Unix(UnixStream::connect(path)?),
            None => {
                let s = TcpStream::connect(target)?;
                // Requests are single small frames followed by a wait
                // for the reply; Nagle would hold them back.
                s.set_nodelay(true)?;
                Conn::Tcp(s)
            }
        };
        let mut client = NodbClient {
            conn,
            server: String::new(),
            poisoned: false,
        };
        match client.read()? {
            Frame::Hello { version, server } => {
                if version != PROTOCOL_VERSION {
                    return Err(NoDbError::config(format!(
                        "protocol version mismatch: server speaks v{version}, client v{PROTOCOL_VERSION}"
                    )));
                }
                client.server = server;
                Ok(client)
            }
            Frame::Busy { message } => Err(NoDbError::busy(message)),
            other => Err(NoDbError::parse(format!(
                "expected Hello from server, got {other:?}"
            ))),
        }
    }

    /// The server identification string from its `Hello`.
    pub fn server(&self) -> &str {
        &self.server
    }

    /// Execute `sql` with no parameters and collect the whole result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        self.query_params(sql, &[])
    }

    /// Execute `sql` with positional parameters and collect the whole
    /// result. An admission-control rejection surfaces as
    /// [`NoDbError::Busy`] — retry later; nothing executed.
    pub fn query_params(&mut self, sql: &str, params: &[Value]) -> Result<QueryResult> {
        self.stream(sql, params)?.collect_result()
    }

    /// Execute `sql` and stream rows lazily. Dropping the returned
    /// [`RowStream`] before `Done` severs the connection, which the
    /// server observes as a failed write — its cursor drops and the
    /// raw-file scan stops at block granularity. The client is poisoned
    /// afterwards; reconnect to run more statements.
    pub fn stream(&mut self, sql: &str, params: &[Value]) -> Result<RowStream<'_>> {
        if self.poisoned {
            return Err(NoDbError::config(
                "connection was severed by an abandoned row stream; reconnect",
            ));
        }
        self.send(&Frame::Execute {
            sql: sql.to_string(),
            params: params.to_vec(),
        })?;
        match self.read()? {
            Frame::RowSchema { columns } => {
                let schema = schema_of_columns(&columns)?;
                Ok(RowStream {
                    client: self,
                    schema,
                    rows: 0,
                    done: false,
                })
            }
            Frame::Busy { message } => Err(NoDbError::busy(message)),
            Frame::Error { kind, message } => Err(kind.to_error(message)),
            other => Err(NoDbError::parse(format!(
                "expected RowSchema, got {other:?}"
            ))),
        }
    }

    /// Fetch the server-side observability view of `table`: scan
    /// metrics, auxiliary footprints, phase profile and workload heat
    /// (the CLI's `\stats` / `\metrics` over `\connect`). An unknown
    /// table surfaces as the server's typed [`NoDbError::Catalog`].
    pub fn table_stats(&mut self, table: &str) -> Result<StatsPayload> {
        if self.poisoned {
            return Err(NoDbError::config(
                "connection was severed by an abandoned row stream; reconnect",
            ));
        }
        self.send(&Frame::Stats {
            table: table.to_string(),
        })?;
        match self.read()? {
            Frame::StatsReport(p) => Ok(p),
            Frame::Error { kind, message } => Err(kind.to_error(message)),
            other => Err(NoDbError::parse(format!(
                "expected StatsReport, got {other:?}"
            ))),
        }
    }

    /// Say `Goodbye` and close the connection cleanly.
    pub fn close(mut self) -> Result<()> {
        if !self.poisoned {
            self.send(&Frame::Goodbye)?;
            // Wait for the server's Goodbye (or EOF) so the server-side
            // handler has observed the close before we return.
            loop {
                match read_frame(&mut self.conn) {
                    Ok(Some(Frame::Goodbye)) | Ok(None) | Err(_) => break,
                    Ok(Some(_)) => {}
                }
            }
        }
        Ok(())
    }

    fn send(&mut self, frame: &Frame) -> Result<()> {
        write_frame(&mut self.conn, frame)?;
        self.conn.flush()?;
        Ok(())
    }

    fn read(&mut self) -> Result<Frame> {
        read_frame(&mut self.conn)?.ok_or_else(|| NoDbError::parse("server closed the connection"))
    }
}

/// Lazy row stream for one statement; yields `Result<Row>` like the
/// embedded engine's `QueryCursor`. Dropping it mid-stream cancels the
/// query server-side (see [`NodbClient::stream`]).
pub struct RowStream<'c> {
    client: &'c mut NodbClient,
    schema: Schema,
    rows: u64,
    done: bool,
}

impl RowStream<'_> {
    /// Output schema, known before the first row arrives.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Abort the stream without severing the connection: send
    /// [`Frame::Cancel`], drain whatever row frames were already in
    /// flight, and wait for the server's `Cancelled` acknowledgement.
    /// Returns the number of rows the server streamed before stopping.
    /// The server drops its cursor — the same early-stop path an
    /// abandoned cursor takes, so the raw scan halts at block
    /// granularity — but unlike dropping the [`RowStream`], the client
    /// is *not* poisoned: the connection carries further statements.
    ///
    /// If the stream finishes (`Done`) or fails (`Error`) before the
    /// server sees the `Cancel`, the server acknowledges the stale
    /// cancel anyway; this method consumes that acknowledgement, so the
    /// conversation is in sync either way. A statement error observed
    /// while cancelling is returned after the handshake completes.
    pub fn cancel(mut self) -> Result<u64> {
        if self.done {
            return Ok(self.rows); // already complete; nothing in flight
        }
        self.client.send(&Frame::Cancel)?;
        let mut failed: Option<NoDbError> = None;
        loop {
            match self.client.read()? {
                // Rows (and possibly the stream's own terminator) that
                // were in flight before the server saw the Cancel.
                Frame::Row(_) | Frame::Done { .. } => {}
                Frame::Error { kind, message } => failed = Some(kind.to_error(message)),
                Frame::Cancelled { rows } => {
                    self.done = true;
                    return match failed {
                        Some(e) => Err(e),
                        None => Ok(rows),
                    };
                }
                other => {
                    return Err(NoDbError::parse(format!(
                        "expected Cancelled, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Drain the stream into a [`QueryResult`] (the shape the embedded
    /// `NoDb::query` returns, so results are directly comparable).
    pub fn collect_result(mut self) -> Result<QueryResult> {
        let mut rows = Vec::new();
        for row in &mut self {
            rows.push(row?);
        }
        Ok(QueryResult {
            schema: self.schema.clone(),
            rows,
        })
    }
}

impl Iterator for RowStream<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.client.read() {
            Ok(Frame::Row(row)) => {
                self.rows += 1;
                Some(Ok(row))
            }
            Ok(Frame::Done { rows }) => {
                self.done = true;
                if rows != self.rows {
                    return Some(Err(NoDbError::internal(format!(
                        "server reported {rows} rows, stream carried {}",
                        self.rows
                    ))));
                }
                None
            }
            Ok(Frame::Error { kind, message }) => {
                self.done = true;
                Some(Err(kind.to_error(message)))
            }
            Ok(other) => {
                self.done = true;
                Some(Err(NoDbError::parse(format!(
                    "expected Row/Done, got {other:?}"
                ))))
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

impl Drop for RowStream<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Abandoned mid-stream: sever the socket so the server's
            // next write fails and its scan stops early. The connection
            // cannot carry further statements after this.
            let _ = self.client.conn.shutdown();
            self.client.poisoned = true;
        }
    }
}
