//! Conventional row-store substrate: what PostgresRaw is compared
//! *against*.
//!
//! The paper's baselines (PostgreSQL, MySQL, "DBMS X") are loaded
//! engines: data must first be parsed, converted to binary and written
//! into slotted pages before the first query can run; queries then read
//! those pages through a buffer pool. This crate builds that stack from
//! scratch:
//!
//! * [`page`] — 8 KiB slotted pages.
//! * [`mod@tuple`] — binary row codec with configurable tuple-header
//!   overhead, plus an overflow path for rows larger than a page (the
//!   mechanism behind Figure 13's wide-attribute degradation).
//! * [`bufpool`] — an LRU buffer pool.
//! * [`heap`] — heap files + scans.
//! * [`engine`] — the loaded-table engine implementing
//!   [`nodb_exec::TableProvider`], with three [`EngineProfile`]s standing
//!   in for the paper's comparators (see DESIGN.md §3 for the
//!   substitution rationale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
pub mod engine;
pub mod heap;
pub mod page;
pub mod tuple;

pub use bufpool::BufferPool;
pub use engine::{EngineProfile, LoadReport, LoadedTable, StorageEngine};
pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
