//! Admission-control and shutdown behavior of the query server.
//!
//! Deterministic concurrency tests: a custom [`TableProvider`] whose
//! scan blocks on an explicit gate lets the tests hold queries
//! in-flight for exactly as long as they need — no sleeps-as-sync.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nodb_common::{NoDbError, Row, Schema, Value};
use nodb_core::{NoDb, NoDbConfig};
use nodb_exec::{BoxOp, Operator, TableProvider};
use nodb_server::{NodbClient, NodbServer, ServerConfig};
use nodb_sql::BoundExpr;

/// A reusable "hold the scan open" gate: scans report in and then wait
/// until the test opens the gate.
struct Gate {
    started: AtomicUsize,
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            started: AtomicUsize::new(0),
            open: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn open(&self) {
        *self.open.lock().unwrap() = true;
        self.cv.notify_all();
    }

    fn wait_for_starters(&self, n: usize, within: Duration) {
        let deadline = Instant::now() + within;
        while self.started.load(Ordering::Acquire) < n {
            assert!(
                Instant::now() < deadline,
                "only {} of {n} gated scans started",
                self.started.load(Ordering::Acquire)
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Emits `rows` single-int rows, but only after the gate opens.
struct GatedProvider {
    gate: Arc<Gate>,
    rows: i32,
}

struct GatedOp {
    gate: Arc<Gate>,
    next: i32,
    rows: i32,
    reported: bool,
}

impl Operator for GatedOp {
    fn next_row(&mut self) -> nodb_common::Result<Option<Row>> {
        if !self.reported {
            self.reported = true;
            self.gate.started.fetch_add(1, Ordering::AcqRel);
            let mut open = self.gate.open.lock().unwrap();
            while !*open {
                open = self.gate.cv.wait(open).unwrap();
            }
        }
        if self.next >= self.rows {
            return Ok(None);
        }
        self.next += 1;
        Ok(Some(Row(vec![Value::Int32(self.next - 1)])))
    }
}

impl TableProvider for GatedProvider {
    fn scan(&self, _projection: &[usize], _filters: &[BoundExpr]) -> nodb_common::Result<BoxOp> {
        Ok(Box::new(GatedOp {
            gate: Arc::clone(&self.gate),
            next: 0,
            rows: self.rows,
            reported: false,
        }))
    }
}

fn gated_engine(gate: &Arc<Gate>, rows: i32) -> Arc<NoDb> {
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_provider(
        "gated",
        Schema::parse("v int").unwrap(),
        Box::new(GatedProvider {
            gate: Arc::clone(gate),
            rows,
        }),
    )
    .unwrap();
    Arc::new(db)
}

fn start_tcp(
    db: Arc<NoDb>,
    config: ServerConfig,
) -> (
    String,
    nodb_server::ServerHandle,
    std::thread::JoinHandle<nodb_common::Result<nodb_server::ServerStats>>,
) {
    let server = NodbServer::bind_tcp(db, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

#[test]
fn pool_saturation_answers_busy_not_hang() {
    let gate = Gate::new();
    let db = gated_engine(&gate, 4);
    let (addr, handle, join) = start_tcp(
        db,
        ServerConfig {
            max_inflight: 2,
            ..ServerConfig::default()
        },
    );

    // Two queries occupy both permits and park inside their scans.
    let holders: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = NodbClient::connect(&addr).unwrap();
                let r = c.query("select v from gated").unwrap();
                c.close().unwrap();
                r.rows.len()
            })
        })
        .collect();
    gate.wait_for_starters(2, Duration::from_secs(10));

    // The third concurrent query must get a typed Busy, immediately.
    let mut crowded = NodbClient::connect(&addr).unwrap();
    let t = Instant::now();
    let err = crowded.query("select v from gated").unwrap_err();
    assert!(
        matches!(err, NoDbError::Busy(_)),
        "expected Busy, got: {err}"
    );
    assert!(
        t.elapsed() < Duration::from_secs(5),
        "Busy should not queue behind the saturated pool"
    );

    // Capacity freed -> the same connection succeeds on retry.
    gate.open();
    for h in holders {
        assert_eq!(h.join().unwrap(), 4);
    }
    let r = crowded.query("select v from gated").unwrap();
    assert_eq!(r.rows.len(), 4);
    crowded.close().unwrap();

    handle.shutdown();
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.queries_rejected, 1);
    assert_eq!(stats.queries_executed, 3);
}

#[test]
fn connection_cap_answers_busy_at_accept() {
    let gate = Gate::new();
    gate.open(); // irrelevant here; don't block anything
    let db = gated_engine(&gate, 1);
    let (addr, handle, join) = start_tcp(
        db,
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    );

    let _a = NodbClient::connect(&addr).unwrap();
    let _b = NodbClient::connect(&addr).unwrap();
    // Give the server a beat to tick both connections' open counters.
    let deadline = Instant::now() + Duration::from_secs(5);
    let err = loop {
        match NodbClient::connect(&addr) {
            Err(e) => break e,
            Ok(c) => {
                // Raced an open slot before the counters settled; close
                // and try again.
                let _ = c.close();
                assert!(Instant::now() < deadline, "third connection never refused");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    };
    assert!(matches!(err, NoDbError::Busy(_)), "got: {err}");

    handle.shutdown();
    let stats = join.join().unwrap().unwrap();
    assert!(stats.connections_rejected >= 1);
}

#[test]
fn client_disconnect_mid_stream_stops_the_raw_scan() {
    // A real CSV big enough that the whole result cannot hide in socket
    // buffers: ~20 MB. The client reads a handful of rows and hangs up;
    // the server's next flush fails, dropping its cursor, which stops
    // the raw scan at block granularity.
    let td = nodb_common::TempDir::new("nodb-server-drop").unwrap();
    let path = td.file("wide.csv");
    {
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        let pad = "x".repeat(80);
        for i in 0..200_000 {
            writeln!(f, "{i},{pad}").unwrap();
        }
    }
    let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
    db.register_csv(
        "wide",
        &path,
        Schema::parse("id int, pad text").unwrap(),
        Default::default(),
        nodb_core::AccessMode::InSitu,
    )
    .unwrap();
    let db = Arc::new(db);
    let (addr, handle, join) = start_tcp(Arc::clone(&db), ServerConfig::default());

    let mut client = NodbClient::connect(&addr).unwrap();
    {
        let mut stream = client.stream("select id, pad from wide", &[]).unwrap();
        for _ in 0..5 {
            stream.next().unwrap().unwrap();
        }
        // Dropping mid-stream severs the connection.
    }

    // The scan must stop early: wait until the metrics stop moving,
    // then check how much of the table was actually emitted.
    let total: u64 = 200_000;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = db.metrics("wide").unwrap().rows_emitted;
    let emitted = loop {
        std::thread::sleep(Duration::from_millis(100));
        let now = db.metrics("wide").unwrap().rows_emitted;
        if now == last {
            break now;
        }
        assert!(Instant::now() < deadline, "scan did not settle");
        last = now;
    };
    assert!(
        emitted < total,
        "disconnect did not stop the scan: all {emitted} rows were emitted"
    );

    // The engine (and server) are still healthy afterwards.
    let mut fresh = NodbClient::connect(&addr).unwrap();
    let r = fresh.query("select count(*) from wide").unwrap();
    assert_eq!(r.rows[0].get(0), &Value::Int64(total as i64));
    fresh.close().unwrap();

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_in_flight_streams_and_refuses_new_connections() {
    let gate = Gate::new();
    let db = gated_engine(&gate, 1000);
    let (addr, handle, join) = start_tcp(db, ServerConfig::default());

    // A query parks inside its scan, holding a stream in flight.
    let addr2 = addr.clone();
    let in_flight = std::thread::spawn(move || {
        let mut c = NodbClient::connect(&addr2).unwrap();
        let r = c.query("select v from gated").unwrap();
        r.rows.len()
    });
    gate.wait_for_starters(1, Duration::from_secs(10));

    handle.shutdown();

    // New connections are refused once the accept loop has wound down
    // (poll briefly: the self-dial wake is asynchronous).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match NodbClient::connect(&addr) {
            Err(_) => break,
            Ok(c) => {
                let _ = c.close();
                assert!(
                    Instant::now() < deadline,
                    "connections still accepted after shutdown"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // ... but the in-flight stream drains to completion, bit-complete.
    gate.open();
    assert_eq!(in_flight.join().unwrap(), 1000);
    let stats = join.join().unwrap().unwrap();
    assert_eq!(stats.queries_executed, 1);
}
