//! The streaming session surface: prepared statements, parameter
//! binding and lazy query cursors.
//!
//! NoDB's defining workload is a *sequence* of queries over the same raw
//! file — the engine amortizes tokenizing and parsing work across
//! queries (§4–§5), so the API should amortize *preparation* work the
//! same way. [`NoDb::prepare`] lexes, parses and binds a statement once;
//! the returned [`Statement`] can then be executed any number of times
//! with different [`Params`], and each [`Statement::execute`] re-runs
//! only the cheap, stats-driven optimizer pass
//! ([`nodb_sql::refresh_stats`]) against the *current* adaptive
//! statistics — so a plan prepared against a cold table picks up the
//! statistics later queries collected, instead of going stale.
//!
//! Execution is lazy: [`Statement::execute`] returns a [`QueryCursor`],
//! an `Iterator<Item = Result<Row>>` that pulls rows one at a time
//! through the Volcano operator tree. A consumer that stops early — a
//! `LIMIT`, a UI page, an abandoned cursor — stops the underlying raw
//! scan early too, and whatever auxiliary structures the partial scan
//! built (end-of-line index blocks, positional-map chunks, cache
//! columns) keep serving future queries.
//!
//! ```no_run
//! use nodb_core::{AccessMode, NoDb, NoDbConfig, Params};
//! use nodb_common::Schema;
//! use nodb_csv::CsvOptions;
//!
//! # fn main() -> nodb_common::Result<()> {
//! let mut db = NoDb::new(NoDbConfig::postgres_raw())?;
//! db.register_csv(
//!     "people",
//!     std::path::Path::new("people.csv"),
//!     Schema::parse("id int, name text, score double")?,
//!     CsvOptions::default(),
//!     AccessMode::InSitu,
//! )?;
//! // Prepared once: lex + parse + bind happen here, not per execution.
//! let stmt = db.prepare("select name, score from people where score > ?")?;
//! for threshold in [0.5, 0.8, 0.95] {
//!     // Each execution streams rows lazily from the raw file.
//!     for row in stmt.execute(&Params::new().bind(threshold))? {
//!         println!("{}", row?);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use nodb_common::{DataType, Date, NoDbError, Result, Row, Schema, Value};
use nodb_exec::{build_plan, build_plan_with_params, RowCursor};
use nodb_sql::binder::PlannerOptions;
use nodb_sql::explain::ExplainPlan;
use nodb_sql::rewrite::RulePipeline;
use nodb_sql::{parser, refresh_stats, LogicalPlan};

use crate::profile::{self, PhaseProfileAtomic, QueryProfile, SampledClock};
use crate::{NoDb, QueryResult};

/// Positional parameter values for one execution of a [`Statement`].
///
/// Values bind in order: the first bound value fills `?`/`$1`, the
/// second `?`/`$2`, and so on. Anything with a `Into<Value>` conversion
/// binds directly (integers, floats, strings, booleans, dates,
/// `Option`s for NULL).
///
/// ```
/// use nodb_core::Params;
/// let p = Params::new().bind(42i64).bind("MAIL").bind(0.05);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: Vec<Value>,
}

impl Params {
    /// No parameters (for statements without placeholders).
    pub fn new() -> Params {
        Params::default()
    }

    /// Bind the next positional value (builder style).
    pub fn bind(mut self, v: impl Into<Value>) -> Params {
        self.values.push(v.into());
        self
    }

    /// Bind the next positional value (in-place).
    pub fn push(&mut self, v: impl Into<Value>) {
        self.values.push(v.into());
    }

    /// Number of bound values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Are no values bound?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The bound values, in binding order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl From<Vec<Value>> for Params {
    fn from(values: Vec<Value>) -> Params {
        Params { values }
    }
}

impl FromIterator<Value> for Params {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Params {
        Params {
            values: iter.into_iter().collect(),
        }
    }
}

/// A prepared statement: SQL that was lexed, parsed, bound and
/// optimized once, ready to execute repeatedly with different
/// parameters.
///
/// Created by [`NoDb::prepare`]. The statement borrows the engine, so
/// the catalog cannot change (no registrations or drops) while prepared
/// statements are alive — which is exactly what keeps the cached plan's
/// bindings valid.
///
/// What is fixed at prepare time: the parse tree, name resolution,
/// column layouts, pushed-down filters, join *order* and output schema.
/// What stays fresh at execute time: parameter values, row estimates
/// and the aggregation strategy, all recomputed from the engine's
/// current on-the-fly statistics by [`nodb_sql::refresh_stats`]. To
/// re-derive the join order from new statistics, prepare again —
/// preparation is cheap, that is the point.
///
/// ```no_run
/// # fn main() -> nodb_common::Result<()> {
/// # let db = nodb_core::NoDb::new(nodb_core::NoDbConfig::postgres_raw())?;
/// use nodb_core::Params;
/// let stmt = db.prepare("select count(*) from events where day = $1 and ms > $2")?;
/// assert_eq!(stmt.param_count(), 2);
/// // Re-executed with fresh parameters; never re-parsed or re-bound.
/// let monday = stmt.query(&Params::new().bind("2026-07-27").bind(250i64))?;
/// let tuesday = stmt.query(&Params::new().bind("2026-07-28").bind(250i64))?;
/// # let _ = (monday, tuesday);
/// # Ok(())
/// # }
/// ```
pub struct Statement<'db> {
    db: &'db NoDb,
    sql: String,
    plan: LogicalPlan,
    /// Names of the rewrite rules that fired at prepare time, in
    /// application order (empty when the rewriter is off).
    applied_rules: Vec<&'static str>,
    param_count: usize,
    param_types: Vec<Option<DataType>>,
}

impl NoDb {
    /// Prepare a SQL statement for repeated execution: lex, parse and
    /// bind now; substitute parameters and stream rows at each
    /// [`Statement::execute`].
    ///
    /// Placeholders are `?` (numbered in order of appearance) or `$N`
    /// (explicit, 1-based, reusable — `$1` may appear several times);
    /// the two styles cannot be mixed in one statement. Each parameter
    /// is typed at bind time from its surrounding context (a parameter
    /// compared against a `date` column expects a date, and will parse
    /// a text value like `'1994-01-01'` at execute time).
    pub fn prepare(&self, sql: &str) -> Result<Statement<'_>> {
        let stmt = parser::parse(sql)?;
        let param_count = stmt.param_count()?;
        let options = PlannerOptions {
            use_stats: self.config.enable_stats,
            rewrite: self.config.enable_rewrite,
        };
        let mut plan = nodb_sql::binder::bind(&stmt, self, &options)?;
        let applied_rules = if self.config.enable_rewrite {
            RulePipeline::standard().run(&mut plan)
        } else {
            Vec::new()
        };
        let param_types = plan.param_types(param_count);
        Ok(Statement {
            db: self,
            sql: sql.to_string(),
            plan,
            applied_rules,
            param_count,
            param_types,
        })
    }

    /// Run a SQL query and stream the result: one-shot
    /// `prepare` + `execute`, returning the lazy [`QueryCursor`]
    /// instead of a materialized [`QueryResult`]. Rows are pulled from
    /// the raw file as the cursor is consumed, so dropping the cursor
    /// early (or putting a `LIMIT` on the query) stops the scan early —
    /// the engine never holds more than the pipeline's working set in
    /// memory, regardless of result size.
    ///
    /// Caveat: a *cold* scan with
    /// [`scan_threads`](crate::NoDbConfig::scan_threads)` > 1` stages
    /// the whole un-indexed tail before emitting its first row (the
    /// documented trade-off of the chunk-parallel pass), so early
    /// termination is block-granular on the default single-threaded
    /// cold path and on warm, map-covered reads under any setting.
    pub fn query_stream(&self, sql: &str) -> Result<QueryCursor> {
        self.prepare(sql)?.execute(&Params::new())
    }
}

impl Statement<'_> {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The statement's output schema (column names and inferred types).
    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// Number of parameter placeholders the statement declares.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Bind-time inferred parameter types, by slot (`None` when the
    /// statement gives a slot no usable type context).
    pub fn param_types(&self) -> &[Option<DataType>] {
        &self.param_types
    }

    /// Execute with the given parameters, returning a lazy cursor.
    ///
    /// No re-lex, re-parse or re-bind happens here: parameter values
    /// are checked against their bind-time types, substituted into the
    /// cached plan, and only the cheap stats-driven optimizer pass
    /// re-runs against the engine's current adaptive statistics (so
    /// e.g. the aggregation strategy flips from pessimistic sort to
    /// hash once the statistics a previous execution collected make the
    /// group count known — the plan never goes stale).
    pub fn execute(&self, params: &Params) -> Result<QueryCursor> {
        let values = self.bind_values(params)?;
        // Per-query resource accounting: install this execution's
        // accumulator in the thread-local for the duration of plan
        // lowering — scan operators (constructed inside `build_plan*`)
        // capture it and attribute their phase work to this query.
        let scan_profile = Arc::new(PhaseProfileAtomic::default());
        let _scope = profile::enter_query(Arc::clone(&scan_profile));
        if self.db.config.enable_stats {
            // Substitute first so the refreshed estimates see concrete
            // constants (value-aware selectivities), then refresh.
            let mut plan = self.plan.substitute_params(&values);
            refresh_stats(&mut plan, self.db, true);
            let schema = plan.schema().clone();
            let op = build_plan(&plan, self.db)?;
            Ok(QueryCursor::new(
                schema,
                RowCursor::with_batch(op, self.db.config.batch_rows),
                scan_profile,
            ))
        } else {
            // The "w/o statistics" regime has nothing to refresh:
            // substitute while lowering, with no intermediate plan clone.
            let op = build_plan_with_params(&self.plan, self.db, &values)?;
            Ok(QueryCursor::new(
                self.plan.schema().clone(),
                RowCursor::with_batch(op, self.db.config.batch_rows),
                scan_profile,
            ))
        }
    }

    /// Execute and materialize: `execute(params)` + [`QueryCursor::collect`].
    pub fn query(&self, params: &Params) -> Result<QueryResult> {
        self.execute(params)?.collect()
    }

    /// Names of the rewrite rules that fired when this statement was
    /// prepared, in application order (empty when
    /// [`crate::NoDbConfig::enable_rewrite`] is off or nothing matched).
    pub fn applied_rules(&self) -> &[&'static str] {
        &self.applied_rules
    }

    /// EXPLAIN this statement as it would run *now*: parameters
    /// substituted and estimates/strategies refreshed from current
    /// statistics, without executing anything. Returns the typed
    /// [`ExplainPlan`] tree — `render()` it for the classic text form —
    /// carrying the rewrite rules that fired at prepare time.
    pub fn explain(&self, params: &Params) -> Result<ExplainPlan> {
        let values = self.bind_values(params)?;
        let mut plan = self.plan.substitute_params(&values);
        refresh_stats(&mut plan, self.db, self.db.config.enable_stats);
        Ok(ExplainPlan::from_plan(&plan, self.applied_rules.clone()))
    }

    /// Validate count and types, returning the coerced values.
    fn bind_values(&self, params: &Params) -> Result<Vec<Value>> {
        if params.len() != self.param_count {
            return Err(NoDbError::plan(format!(
                "statement expects {} parameter(s), got {}",
                self.param_count,
                params.len()
            )));
        }
        params
            .values()
            .iter()
            .enumerate()
            .map(|(i, v)| coerce_param(i, v, self.param_types.get(i).copied().flatten()))
            .collect()
    }
}

/// Check an execute-time value against a bind-time parameter type,
/// coercing where the literal-SQL path would have produced a different
/// representation (text dates parse to [`Value::Date`], matching what
/// `date '…'` yields when the value is inlined).
fn coerce_param(idx: usize, v: &Value, want: Option<DataType>) -> Result<Value> {
    let Some(want) = want else {
        // No bind-time context: pass through as given.
        return Ok(v.clone());
    };
    if let (Value::Text(s), DataType::Date) = (v, want) {
        return Date::parse(s)
            .map(Value::Date)
            .map_err(|e| NoDbError::plan(format!("parameter ${}: {e}", idx + 1)));
    }
    let compatible = match (v, want) {
        (Value::Null, _) => true,
        // Numerics compare cross-width at eval time exactly like
        // inlined literals do; keep the given representation.
        (
            Value::Int32(_) | Value::Int64(_) | Value::Float64(_),
            DataType::Int32 | DataType::Int64 | DataType::Float64,
        ) => true,
        (Value::Text(_), DataType::Text) => true,
        (Value::Date(_), DataType::Date) => true,
        (Value::Bool(_), DataType::Bool) => true,
        _ => false,
    };
    if compatible {
        Ok(v.clone())
    } else {
        Err(NoDbError::plan(format!(
            "parameter ${}: expected {want}, got {}",
            idx + 1,
            v.data_type()
                .map_or_else(|| "null".to_string(), |t| t.to_string())
        )))
    }
}

/// A lazy stream of query results: `Iterator<Item = Result<Row>>` plus
/// the output schema.
///
/// Rows are pulled one at a time through the operator tree, which pulls
/// blocks from the raw file only as needed — stop consuming and the
/// scan stops too (verifiable through [`crate::ScanMetrics`]: a
/// `LIMIT 10` over a million-row file tokenizes a few blocks, not the
/// file, on the default single-threaded cold path; a chunk-parallel
/// cold scan stages its whole tail first, see
/// [`crate::NoDbConfig::scan_threads`]). Auxiliary structures built by
/// the consumed prefix of the scan are kept and serve future queries.
///
/// The cursor owns its operator tree and keeps the table runtime alive
/// through shared handles, so it remains valid even if the table is
/// dropped from the catalog mid-stream. Exhaustion and errors fuse the
/// cursor (the tree is released eagerly; further `next` calls return
/// `None`).
///
/// ```no_run
/// # fn main() -> nodb_common::Result<()> {
/// # let db = nodb_core::NoDb::new(nodb_core::NoDbConfig::postgres_raw())?;
/// let mut cursor = db.query_stream("select user, ms from events where ms > 500")?;
/// println!("{}", cursor.columns().join(" | "));
/// for row in cursor.by_ref().take(10) {
///     println!("{}", row?);
/// }
/// drop(cursor); // stops the underlying raw-file scan early
/// # Ok(())
/// # }
/// ```
pub struct QueryCursor {
    schema: Schema,
    rows: RowCursor,
    /// Raw-scan phase accounting for this query (shared with the scan
    /// operators inside the tree).
    scan_profile: Arc<PhaseProfileAtomic>,
    /// Sampled cursor-iteration time (see [`QueryProfile::exec_ns`]).
    exec_ns: u64,
    exec_clock: SampledClock,
    rows_returned: u64,
}

impl QueryCursor {
    pub(crate) fn new(
        schema: Schema,
        rows: RowCursor,
        scan_profile: Arc<PhaseProfileAtomic>,
    ) -> QueryCursor {
        QueryCursor {
            schema,
            rows,
            scan_profile,
            exec_ns: 0,
            exec_clock: SampledClock::default(),
            rows_returned: 0,
        }
    }

    /// What this query has spent so far, phase by phase: the raw-scan
    /// work it drove (across every table it touched) plus sampled
    /// cursor-iteration time and the rows returned. Valid at any point —
    /// mid-stream, after exhaustion, or on an abandoned cursor.
    pub fn profile(&self) -> QueryProfile {
        QueryProfile {
            scan: self.scan_profile.snapshot(),
            exec_ns: self.exec_ns,
            rows: self.rows_returned,
        }
    }

    /// Output schema (names from aliases, inferred types).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Output column names.
    pub fn columns(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Drain the cursor into a materialized [`QueryResult`] (the
    /// classic [`NoDb::query`] shape). Fails on the first row error.
    pub fn collect(self) -> Result<QueryResult> {
        Ok(self.collect_with_profile()?.0)
    }

    /// Drain the cursor like [`QueryCursor::collect`], additionally
    /// returning the query's final [`QueryProfile`] (which `collect`
    /// consumes along with the cursor).
    pub fn collect_with_profile(mut self) -> Result<(QueryResult, QueryProfile)> {
        let mut out = Vec::new();
        for r in self.by_ref() {
            out.push(r?);
        }
        let profile = self.profile();
        let QueryCursor { schema, .. } = self;
        Ok((QueryResult { schema, rows: out }, profile))
    }
}

impl Iterator for QueryCursor {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        self.exec_clock.start(self.rows_returned);
        let r = self.rows.next();
        self.exec_clock.stop(&mut self.exec_ns);
        if matches!(r, Some(Ok(_))) {
            self.rows_returned += 1;
        }
        r
    }
}

impl std::fmt::Debug for QueryCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCursor")
            .field("schema", &self.schema)
            .field("done", &self.rows.is_done())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Statement<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statement")
            .field("sql", &self.sql)
            .field("param_count", &self.param_count)
            .finish_non_exhaustive()
    }
}
