//! **nodb-core** — the PostgresRaw engine: query raw data files in situ,
//! with adaptive positional maps, result caching and on-the-fly
//! statistics, or fall back to the paper's baselines (external files /
//! conventional loading) for comparison.
//!
//! ```no_run
//! use nodb_core::{AccessMode, NoDb, NoDbConfig, Params};
//! use nodb_common::Schema;
//! use nodb_csv::CsvOptions;
//!
//! let mut db = NoDb::new(NoDbConfig::postgres_raw()).unwrap();
//! let schema = Schema::parse("id int, name text, score double").unwrap();
//! db.register_csv(
//!     "people",
//!     std::path::Path::new("people.csv"),
//!     schema,
//!     CsvOptions::default(),
//!     AccessMode::InSitu,
//! )
//! .unwrap();
//! // No loading step: the first query touches the raw file directly.
//! let result = db.query("select name, score from people where score > 0.5").unwrap();
//! for row in &result.rows {
//!     println!("{row}");
//! }
//! // Repeated queries amortize preparation through the session API
//! // ([`NoDb::prepare`] / [`Statement`]) and can stream rows lazily
//! // ([`NoDb::query_stream`] / [`QueryCursor`]) instead of
//! // materializing whole result sets — see [`session`].
//! let stmt = db.prepare("select name from people where score > ?").unwrap();
//! for threshold in [0.5, 0.9] {
//!     for row in stmt.execute(&Params::new().bind(threshold)).unwrap() {
//!         println!("{}", row.unwrap());
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod idle;
pub mod pred;
pub mod profile;
pub mod runtime;
pub mod scan;
pub mod session;

pub use config::{AccessMode, NoDbConfig};
pub use idle::{IdleFocus, IdleReport};
pub use nodb_common::IoBackend;
pub use nodb_sql::explain::{ExplainNode, ExplainPlan};
pub use pred::{LikeShape, PredItem, PredOp, ScanPredicate};
pub use profile::{PhaseProfile, PhaseProfileAtomic, QueryProfile};
pub use runtime::{RawTableRuntime, ScanMetrics, ScanMetricsAtomic};
pub use scan::{AuxFlags, InSituScanOp};
pub use session::{Params, QueryCursor, Statement};

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nodb_common::{LineFormat, NoDbError, Result, Row, Schema, TempDir, Value};
use nodb_csv::lines::LineReader;
use nodb_csv::{tokenize, CsvFormat, CsvOptions};
use nodb_exec::{BoxOp, ExecCatalog, TableProvider};
use nodb_json::JsonFormat;
use nodb_sql::binder::{CatalogView, PlannerOptions};
use nodb_sql::{plan_query_traced, BoundExpr, LogicalPlan};
use nodb_stats::{StatsBuilder, TableStats};
use nodb_storage::{LoadReport, LoadedTable, StorageEngine};

/// A query result: column names plus rows.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema (names from aliases, inferred types).
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Column names.
    pub fn columns(&self) -> Vec<&str> {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect()
    }
}

/// Snapshot of a table's auxiliary-structure footprint (for experiments).
#[derive(Debug, Clone, Copy)]
pub struct AuxInfo {
    /// Positional-map bytes in memory (attribute chunks).
    pub posmap_bytes: usize,
    /// Total positional pointers held (incl. the end-of-line index).
    pub posmap_pointers: u64,
    /// Cache bytes in memory.
    pub cache_bytes: usize,
    /// Cache utilization in `[0, 1]` (0 when no budget set).
    pub cache_utilization: f64,
    /// Number of attributes with collected statistics.
    pub stats_attrs: usize,
}

pub(crate) enum Provider {
    InSitu(InSituProvider),
    External(ExternalProvider),
    Loaded(Arc<LoadedTable>),
    Custom(Box<dyn TableProvider>),
}

/// Which raw-file format a registered table uses (drives the Loaded-mode
/// bulk path, which is still CSV-specific).
pub(crate) enum RawFormat {
    Csv(CsvOptions),
    Jsonl,
    /// Externally implemented provider; no raw format of ours.
    Custom,
}

pub(crate) struct TableEntry {
    pub(crate) schema: Schema,
    pub(crate) provider: Option<Provider>,
    pub(crate) runtime: Option<Arc<RawTableRuntime>>,
    path: Option<PathBuf>,
    raw: RawFormat,
    mode: AccessMode,
    loaded_stats: Option<TableStats>,
}

/// The NoDB engine.
pub struct NoDb {
    config: NoDbConfig,
    tables: HashMap<String, TableEntry>,
    storage: Option<StorageEngine>,
    _tmp: Option<TempDir>,
    data_dir: PathBuf,
}

impl NoDb {
    /// Create an engine.
    ///
    /// Rejects a malformed value in any registered knob's environment
    /// variable (`NODB_IO_BACKEND`, `NODB_SCAN_THREADS`,
    /// `NODB_BATCH_ROWS`, `NODB_POSMAP_BUDGET`, `NODB_CACHE_BUDGET`,
    /// `NODB_REWRITE` — see [`nodb_common::knob`]) with
    /// [`NoDbError::Config`]: config construction silently falls back to
    /// its defaults (it must stay infallible), so the typo is surfaced
    /// here, on the normal error path, before any query can run under
    /// the wrong substrate, pull style or budget.
    pub fn new(config: NoDbConfig) -> Result<NoDb> {
        nodb_common::knob::validate_env()?;
        let (tmp, data_dir) = match &config.data_dir {
            Some(d) => {
                std::fs::create_dir_all(d)?;
                (None, d.clone())
            }
            None => {
                let t = TempDir::new("nodb-data")?;
                let p = t.path().to_path_buf();
                (Some(t), p)
            }
        };
        Ok(NoDb {
            config,
            tables: HashMap::new(),
            storage: None,
            _tmp: tmp,
            data_dir,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &NoDbConfig {
        &self.config
    }

    /// Register a raw CSV file as a table. For [`AccessMode::Loaded`] the
    /// table must be loaded with [`NoDb::load_table`] before it can be
    /// queried — that is precisely the cost the other modes avoid.
    pub fn register_csv(
        &mut self,
        name: &str,
        path: &Path,
        schema: Schema,
        opts: CsvOptions,
        mode: AccessMode,
    ) -> Result<()> {
        self.register_raw(
            name,
            path,
            schema,
            Arc::new(CsvFormat::new(opts)),
            opts.has_header,
            RawFormat::Csv(opts),
            mode,
        )
    }

    /// Register a raw JSON Lines file (one JSON object per line) as a
    /// table. The schema's field names are the top-level keys pulled from
    /// each object; missing keys and JSON `null`s read as SQL NULL, and
    /// values coerce to the declared types exactly like CSV fields (see
    /// [`nodb_common::format`]). The same adaptive machinery CSV tables
    /// get — end-of-line index, positional map, cache, statistics,
    /// parallel chunked cold scans — applies unchanged.
    ///
    /// [`AccessMode::Loaded`] is not supported for JSONL (the bulk loader
    /// is CSV-specific); use `InSitu` — skipping the load is the point.
    pub fn register_jsonl(
        &mut self,
        name: &str,
        path: &Path,
        schema: Schema,
        mode: AccessMode,
    ) -> Result<()> {
        if mode == AccessMode::Loaded {
            return Err(NoDbError::catalog(
                "JSONL tables cannot be registered as Loaded; use InSitu (no loading step) \
                 or ExternalFiles",
            ));
        }
        let format = Arc::new(JsonFormat::from_schema(&schema));
        self.register_raw(name, path, schema, format, false, RawFormat::Jsonl, mode)
    }

    /// Shared registration path for line-oriented raw formats.
    #[allow(clippy::too_many_arguments)]
    fn register_raw(
        &mut self,
        name: &str,
        path: &Path,
        schema: Schema,
        format: Arc<dyn LineFormat>,
        has_header: bool,
        raw: RawFormat,
        mode: AccessMode,
    ) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.ensure_table_absent(&name)?;
        let entry = match mode {
            AccessMode::InSitu => {
                let runtime = Arc::new(RawTableRuntime::new(&self.config));
                let provider = InSituProvider {
                    runtime: Arc::clone(&runtime),
                    path: path.to_path_buf(),
                    schema: schema.clone(),
                    format,
                    has_header,
                    flags: AuxFlags {
                        posmap: self.config.enable_posmap,
                        cache: self.config.enable_cache,
                        eol: self.config.enable_posmap || self.config.enable_cache,
                        stats: self.config.enable_stats,
                    },
                    stride: self.config.stats_sample_stride,
                    threads: self.config.effective_scan_threads(),
                    io: self.config.effective_io_backend(),
                    pushdown: self.config.enable_rewrite,
                };
                TableEntry {
                    schema,
                    provider: Some(Provider::InSitu(provider)),
                    runtime: Some(runtime),
                    path: Some(path.to_path_buf()),
                    raw,
                    mode,
                    loaded_stats: None,
                }
            }
            AccessMode::ExternalFiles => TableEntry {
                schema: schema.clone(),
                provider: Some(Provider::External(ExternalProvider {
                    path: path.to_path_buf(),
                    schema,
                    format,
                    has_header,
                    io: self.config.effective_io_backend(),
                    pushdown: self.config.enable_rewrite,
                })),
                runtime: None,
                path: Some(path.to_path_buf()),
                raw,
                mode,
                loaded_stats: None,
            },
            AccessMode::Loaded => TableEntry {
                schema,
                provider: None,
                runtime: None,
                path: Some(path.to_path_buf()),
                raw,
                mode,
                loaded_stats: None,
            },
        };
        self.tables.insert(name, entry);
        Ok(())
    }

    /// Shared duplicate-name check for every registration path (`name`
    /// must already be lowercased).
    fn ensure_table_absent(&self, name: &str) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(NoDbError::catalog(format!("table `{name}` already exists")));
        }
        Ok(())
    }

    /// Drop a registered table: the inverse of registration.
    ///
    /// The catalog entry is removed and the table's runtime state is
    /// released — auxiliary structures (end-of-line index, positional
    /// map, cache, statistics) are cleared immediately, and loaded-mode
    /// heap storage is deleted. Queries already streaming from the
    /// table ([`NoDb::query_stream`]) keep their own shared handles and
    /// finish normally; the name becomes free for re-registration right
    /// away.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let name = name.to_ascii_lowercase();
        let entry = self
            .tables
            .remove(&name)
            .ok_or_else(|| NoDbError::catalog(format!("unknown table `{name}`")))?;
        // Free the aux memory now rather than when the last in-flight
        // scan drops its Arc (drop_aux mid-scan is already supported;
        // the scan continues privately from its own offset).
        if let Some(rt) = &entry.runtime {
            rt.clear_aux();
        }
        if matches!(entry.provider, Some(Provider::Loaded(_))) {
            if let Some(storage) = &mut self.storage {
                storage.drop_table(&name)?;
            }
        }
        Ok(())
    }

    /// Register an externally implemented table provider (format
    /// plugins — e.g. the FITS provider from `nodb-fits`).
    pub fn register_provider(
        &mut self,
        name: &str,
        schema: Schema,
        provider: Box<dyn TableProvider>,
    ) -> Result<()> {
        let name = name.to_ascii_lowercase();
        self.ensure_table_absent(&name)?;
        self.tables.insert(
            name,
            TableEntry {
                schema,
                provider: Some(Provider::Custom(provider)),
                runtime: None,
                path: None,
                raw: RawFormat::Custom,
                mode: AccessMode::InSitu,
                loaded_stats: None,
            },
        );
        Ok(())
    }

    /// Perform the up-front load of a [`AccessMode::Loaded`] table
    /// (parse + convert + write binary pages + analyze), returning the
    /// cost report. This is the "Load" bar in the paper's figures.
    pub fn load_table(&mut self, name: &str) -> Result<LoadReport> {
        let name = name.to_ascii_lowercase();
        let entry = self
            .tables
            .get(&name)
            .ok_or_else(|| NoDbError::catalog(format!("unknown table `{name}`")))?;
        if entry.mode != AccessMode::Loaded {
            return Err(NoDbError::catalog(format!(
                "table `{name}` is not registered as Loaded"
            )));
        }
        let path = entry
            .path
            .clone()
            .ok_or_else(|| NoDbError::internal("loaded table without a path"))?;
        let schema = entry.schema.clone();
        let RawFormat::Csv(opts) = entry.raw else {
            return Err(NoDbError::catalog(format!(
                "table `{name}` is not a CSV table; only CSV supports bulk loading"
            )));
        };
        if self.storage.is_none() {
            self.storage = Some(StorageEngine::new(
                &self.data_dir.join("heap"),
                self.config.loaded_profile,
                self.config.pool_pages,
            )?);
        }
        let storage = self.storage.as_mut().expect("created above");
        let report = storage.load_csv(&name, &path, &schema, opts)?;
        let loaded = storage.table(&name)?;
        // Post-load ANALYZE (conventional engines collect statistics after
        // loading; giving the baseline good plans keeps the comparison
        // honest).
        let stats = analyze_csv(&path, &schema, opts, self.config.stats_sample_stride)?;
        let entry = self.tables.get_mut(&name).expect("checked above");
        entry.provider = Some(Provider::Loaded(loaded));
        entry.loaded_stats = Some(stats);
        Ok(report)
    }

    /// Run a SQL query and materialize the full result.
    ///
    /// This is the one-shot convenience over the session API:
    /// `prepare(sql)` + `execute` + `collect`. Use [`NoDb::prepare`] to
    /// amortize preparation across repeated executions (with `?`/`$N`
    /// parameters), or [`NoDb::query_stream`] to consume rows lazily
    /// without materializing the result set.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.prepare(sql)?.execute(&Params::new())?.collect()
    }

    /// Plan a query without executing it (rewrite rules applied when
    /// [`NoDbConfig::enable_rewrite`] is on).
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        Ok(self.plan_traced(sql)?.0)
    }

    /// [`NoDb::plan`] plus the names of the rewrite rules that fired, in
    /// application order (empty when the rewriter is off or nothing
    /// matched).
    pub fn plan_traced(&self, sql: &str) -> Result<(LogicalPlan, Vec<&'static str>)> {
        let options = PlannerOptions {
            use_stats: self.config.enable_stats,
            rewrite: self.config.enable_rewrite,
        };
        plan_query_traced(sql, self, &options)
    }

    /// EXPLAIN as a typed plan tree ([`ExplainPlan`]): structured nodes
    /// carrying the scan projections, pushed-down filters and estimated
    /// cardinalities, plus the rewrite rules that fired. `render()` on
    /// the result reproduces [`NoDb::explain`]'s text exactly.
    pub fn explain_plan(&self, sql: &str) -> Result<ExplainPlan> {
        let (plan, rules) = self.plan_traced(sql)?;
        Ok(ExplainPlan::from_plan(&plan, rules))
    }

    /// EXPLAIN-style plan rendering (the tree only; use
    /// [`NoDb::explain_plan`] for the structured form and applied-rule
    /// trace).
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.plan(sql)?.explain())
    }

    /// Cumulative scan metrics for an in-situ table.
    pub fn metrics(&self, table: &str) -> Result<ScanMetrics> {
        let entry = self.entry(table)?;
        match &entry.runtime {
            Some(rt) => Ok(rt.metrics.snapshot()),
            None => Err(NoDbError::catalog(format!(
                "table `{table}` has no in-situ runtime"
            ))),
        }
    }

    /// Cumulative per-phase resource profile for an in-situ table
    /// (sampled wall-clock estimates plus exact byte/value volumes; see
    /// [`PhaseProfile`]).
    pub fn profile(&self, table: &str) -> Result<PhaseProfile> {
        let entry = self.entry(table)?;
        match &entry.runtime {
            Some(rt) => Ok(rt.profile.snapshot()),
            None => Err(NoDbError::catalog(format!(
                "table `{table}` has no in-situ runtime"
            ))),
        }
    }

    /// Per-attribute workload heat for an in-situ table: the decayed
    /// access-frequency counters the budgeted cache/posmap eviction
    /// policies consult, indexed by table attribute ordinal (attributes
    /// never touched may be absent from the tail).
    pub fn workload_heats(&self, table: &str) -> Result<Vec<u64>> {
        let entry = self.entry(table)?;
        match &entry.runtime {
            Some(rt) => Ok(rt.workload.heats()),
            None => Err(NoDbError::catalog(format!(
                "table `{table}` has no in-situ runtime"
            ))),
        }
    }

    /// Auxiliary-structure footprint for an in-situ table.
    pub fn aux_info(&self, table: &str) -> Result<AuxInfo> {
        let entry = self.entry(table)?;
        match &entry.runtime {
            Some(rt) => {
                let (posmap_bytes, posmap_pointers) = {
                    let pm = rt.posmap.read();
                    (pm.bytes_in_memory(), pm.pointer_count())
                };
                let (cache_bytes, cache_utilization) = {
                    let c = rt.cache.read();
                    (c.bytes(), c.utilization())
                };
                Ok(AuxInfo {
                    posmap_bytes,
                    posmap_pointers,
                    cache_bytes,
                    cache_utilization,
                    stats_attrs: rt.stats.lock().analyzed_attrs().len(),
                })
            }
            None => Err(NoDbError::catalog(format!(
                "table `{table}` has no in-situ runtime"
            ))),
        }
    }

    /// Drop a table's auxiliary structures (the map is "an auxiliary
    /// structure and may be dropped fully or partly at any time", §4.2).
    pub fn drop_aux(&self, table: &str) -> Result<()> {
        let entry = self.entry(table)?;
        if let Some(rt) = &entry.runtime {
            rt.clear_aux();
        }
        Ok(())
    }

    /// Drop the loaded engine's buffer pool (cold-cache runs).
    pub fn clear_buffers(&self) {
        if let Some(s) = &self.storage {
            s.clear_buffers();
        }
    }

    /// Spend up to `budget` of idle time pre-building the table's
    /// auxiliary structures (paper §7, "Auto Tuning Tools"): the
    /// end-of-line index, positional map, cache and statistics advance
    /// block by block and whatever is finished when the budget expires
    /// keeps serving future queries.
    pub fn exploit_idle_time(
        &self,
        table: &str,
        budget: std::time::Duration,
        focus: IdleFocus,
    ) -> Result<IdleReport> {
        idle::run_idle(self, table, budget, focus)
    }

    pub(crate) fn entry(&self, table: &str) -> Result<&TableEntry> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| NoDbError::catalog(format!("unknown table `{table}`")))
    }
}

impl CatalogView for NoDb {
    fn schema_of(&self, table: &str) -> Result<Schema> {
        Ok(self.entry(table)?.schema.clone())
    }

    fn stats_of(&self, table: &str) -> Option<TableStats> {
        let entry = self.entry(table).ok()?;
        if let Some(stats) = &entry.loaded_stats {
            return Some(stats.clone());
        }
        let rt = entry.runtime.as_ref()?;
        let stats = rt.stats.lock();
        if stats.row_count().is_none() && stats.analyzed_attrs().is_empty() {
            None
        } else {
            Some(stats.clone())
        }
    }
}

impl ExecCatalog for NoDb {
    fn batch_rows(&self) -> usize {
        self.config.batch_rows
    }

    fn provider(&self, table: &str) -> Result<&dyn TableProvider> {
        let entry = self.entry(table)?;
        match &entry.provider {
            Some(Provider::InSitu(p)) => Ok(p),
            Some(Provider::External(p)) => Ok(p),
            Some(Provider::Loaded(p)) => Ok(p.as_ref()),
            Some(Provider::Custom(p)) => Ok(p.as_ref()),
            None => Err(NoDbError::catalog(format!(
                "table `{table}` is registered as Loaded but has not been loaded \
                 (call load_table first — or register it InSitu and skip loading entirely)"
            ))),
        }
    }
}

pub(crate) struct InSituProvider {
    runtime: Arc<RawTableRuntime>,
    path: PathBuf,
    schema: Schema,
    format: Arc<dyn LineFormat>,
    has_header: bool,
    flags: AuxFlags,
    stride: u64,
    /// Cold-scan worker threads, already resolved from the config
    /// (`0`-means-auto handled by `NoDbConfig::effective_scan_threads`).
    threads: usize,
    /// Resolved I/O substrate for every scan of this table
    /// (`NoDbConfig::effective_io_backend`).
    io: nodb_common::IoBackend,
    /// Let scans compile pushed-down filters into raw-field predicates
    /// (`NoDbConfig::enable_rewrite`).
    pushdown: bool,
}

impl InSituProvider {
    fn make_scan(&self, projection: Vec<usize>, filters: Vec<BoundExpr>, threads: usize) -> BoxOp {
        Box::new(
            InSituScanOp::new(
                Arc::clone(&self.runtime),
                self.path.clone(),
                self.schema.clone(),
                Arc::clone(&self.format),
                self.has_header,
                projection,
                filters,
                self.flags,
                self.stride,
                threads,
                self.io,
            )
            .with_pushdown(self.pushdown),
        )
    }

    /// A projection-only scan used by idle-time exploitation: same flags
    /// as query scans (so it builds the same structures), no filters.
    /// Always single-threaded so idle budgets keep their block-at-a-time
    /// granularity (a parallel pass would overshoot the budget by a whole
    /// file).
    pub(crate) fn scan_for_idle(&self, attrs: &[usize]) -> Result<BoxOp> {
        let mut attrs = attrs.to_vec();
        attrs.sort_unstable();
        attrs.dedup();
        Ok(self.make_scan(attrs, Vec::new(), 1))
    }
}

impl TableProvider for InSituProvider {
    fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp> {
        Ok(self.make_scan(projection.to_vec(), filters.to_vec(), self.threads))
    }
}

/// Straw-man external files: a fresh scan with no auxiliary structures;
/// nothing learned, nothing remembered ("every query needs to perform
/// loading from scratch", §3.1).
struct ExternalProvider {
    path: PathBuf,
    schema: Schema,
    format: Arc<dyn LineFormat>,
    has_header: bool,
    io: nodb_common::IoBackend,
    pushdown: bool,
}

impl TableProvider for ExternalProvider {
    fn scan(&self, projection: &[usize], filters: &[BoundExpr]) -> Result<BoxOp> {
        let throwaway = Arc::new(RawTableRuntime::new(&NoDbConfig::baseline()));
        Ok(Box::new(
            InSituScanOp::new(
                throwaway,
                self.path.clone(),
                self.schema.clone(),
                Arc::clone(&self.format),
                self.has_header,
                projection.to_vec(),
                filters.to_vec(),
                AuxFlags {
                    posmap: false,
                    cache: false,
                    eol: false,
                    stats: false,
                },
                u64::MAX,
                1,
                self.io,
            )
            .with_pushdown(self.pushdown),
        ))
    }
}

/// Post-load statistics pass (ANALYZE): parse every `stride`-th row and
/// build per-column statistics.
fn analyze_csv(path: &Path, schema: &Schema, opts: CsvOptions, stride: u64) -> Result<TableStats> {
    let stride = stride.max(1);
    let mut reader = LineReader::open(path)?;
    let mut line = Vec::new();
    let mut starts: Vec<u32> = Vec::new();
    let mut builders: Vec<StatsBuilder> = schema
        .fields()
        .iter()
        .map(|f| StatsBuilder::new(f.dtype))
        .collect();
    let mut row_id: u64 = 0;
    let mut skipped_header = !opts.has_header;
    while reader.next_line(&mut line)?.is_some() {
        if !skipped_header {
            skipped_header = true;
            continue;
        }
        if row_id.is_multiple_of(stride) {
            starts.clear();
            tokenize::tokenize_all(&line, opts.delimiter, &mut starts);
            for (i, f) in schema.fields().iter().enumerate() {
                if let Some(&s) = starts.get(i) {
                    let bytes = tokenize::field_at(&line, opts.delimiter, s);
                    if let Ok(v) = Value::parse_field(bytes, f.dtype) {
                        builders[i].offer(&v);
                    }
                }
            }
        }
        row_id += 1;
    }
    let mut stats = TableStats::new();
    stats.set_row_count(row_id);
    for (i, b) in builders.into_iter().enumerate() {
        if b.offered() > 0 {
            stats.set_column(i as u32, b.finalize(Some(row_id as f64)));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests;
