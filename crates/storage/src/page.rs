//! Slotted pages.
//!
//! Classic layout: a small header, a slot array growing forward, tuple
//! data growing backward from the page end. "Each page contains a
//! collection of tuples as well as additional metadata information to
//! help in-page navigation" (§3).

/// Page size in bytes (PostgreSQL's default).
pub const PAGE_SIZE: usize = 8192;

const HDR: usize = 4; // n_slots u16, free_start offset implied
const SLOT: usize = 4; // offset u16, len u16

/// A slotted page over an owned byte buffer.
#[derive(Clone)]
pub struct Page {
    data: Vec<u8>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// Fresh empty page.
    pub fn new() -> Page {
        let mut data = vec![0u8; PAGE_SIZE];
        // free_end starts at PAGE_SIZE.
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Interpret existing bytes as a page.
    pub fn from_bytes(data: Vec<u8>) -> Page {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        Page { data }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Number of tuples stored.
    pub fn n_slots(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    fn free_end(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    /// Bytes available for one more tuple (including its slot entry).
    pub fn free_space(&self) -> usize {
        let slots_end = HDR + self.n_slots() * SLOT;
        self.free_end().saturating_sub(slots_end)
    }

    /// Largest tuple that can ever fit in an empty page.
    pub fn max_tuple_len() -> usize {
        PAGE_SIZE - HDR - SLOT
    }

    /// Insert a tuple; returns its slot index, or `None` if it does not
    /// fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<usize> {
        if tuple.len() + SLOT > self.free_space() || tuple.len() > u16::MAX as usize {
            return None;
        }
        let n = self.n_slots();
        let end = self.free_end();
        let start = end - tuple.len();
        self.data[start..end].copy_from_slice(tuple);
        let slot_off = HDR + n * SLOT;
        self.data[slot_off..slot_off + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.data[slot_off + 2..slot_off + 4].copy_from_slice(&(tuple.len() as u16).to_le_bytes());
        self.data[0..2].copy_from_slice(&((n + 1) as u16).to_le_bytes());
        self.data[2..4].copy_from_slice(&(start as u16).to_le_bytes());
        Some(n)
    }

    /// Tuple bytes at `slot`.
    pub fn tuple(&self, slot: usize) -> &[u8] {
        tuple_of(&self.data, slot)
    }
}

/// Number of tuples in a raw page image (zero-copy view used by scans —
/// a page is pinned once and never copied per tuple).
pub fn n_slots_of(page: &[u8]) -> usize {
    u16::from_le_bytes([page[0], page[1]]) as usize
}

/// Tuple bytes at `slot` of a raw page image.
pub fn tuple_of(page: &[u8], slot: usize) -> &[u8] {
    let slot_off = HDR + slot * SLOT;
    let start = u16::from_le_bytes([page[slot_off], page[slot_off + 1]]) as usize;
    let len = u16::from_le_bytes([page[slot_off + 2], page[slot_off + 3]]) as usize;
    &page[start..start + len]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_read_back() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!!").unwrap();
        assert_eq!(p.n_slots(), 2);
        assert_eq!(p.tuple(a), b"hello");
        assert_eq!(p.tuple(b), b"world!!");
    }

    #[test]
    fn rejects_when_full() {
        let mut p = Page::new();
        let big = vec![7u8; 4000];
        assert!(p.insert(&big).is_some());
        assert!(p.insert(&big).is_some());
        assert!(p.insert(&big).is_none()); // 3rd does not fit
        assert_eq!(p.n_slots(), 2);
    }

    #[test]
    fn max_tuple_fits_exactly() {
        let mut p = Page::new();
        let t = vec![1u8; Page::max_tuple_len()];
        assert!(p.insert(&t).is_some());
        assert_eq!(p.free_space(), 0);
        assert!(p.insert(b"x").is_none());
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new();
        p.insert(b"abc").unwrap();
        let q = Page::from_bytes(p.bytes().to_vec());
        assert_eq!(q.n_slots(), 1);
        assert_eq!(q.tuple(0), b"abc");
    }

    proptest! {
        #[test]
        fn random_tuples_roundtrip(
            tuples in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..300), 0..40)
        ) {
            let mut p = Page::new();
            let mut stored = Vec::new();
            for t in &tuples {
                if let Some(slot) = p.insert(t) {
                    stored.push((slot, t.clone()));
                }
            }
            for (slot, t) in stored {
                prop_assert_eq!(p.tuple(slot), &t[..]);
            }
        }
    }
}
