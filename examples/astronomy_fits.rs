//! Astronomy scenario (paper §5.3): SQL over a FITS binary table,
//! side-by-side with the procedural CFITSIO-style alternative.
//!
//! ```text
//! cargo run --release -p nodb-core --example astronomy_fits
//! ```
//!
//! The paper's Figure 11 point: a procedural program re-scans the file
//! for every aggregate and stays at constant cost, while the in-situ
//! engine's cache makes repeated analysis nearly free — and each SQL
//! query is one line instead of a custom C program.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nodb_common::{Row, TempDir, Value};
use nodb_core::{NoDb, NoDbConfig};
use nodb_fits::procedural::ProcAgg;
use nodb_fits::{FitsProvider, FitsTableWriter, FitsType, ProceduralFits};

const ROWS: usize = 400_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = TempDir::new("nodb-fits-example")?;
    let path = dir.file("catalog.fits");

    // Write a star catalogue: id, position, magnitudes.
    print!("writing {ROWS}-row FITS binary table ... ");
    let mut w = FitsTableWriter::create(
        &path,
        vec![
            ("objid".into(), FitsType::K),
            ("ra".into(), FitsType::D),
            ("dec".into(), FitsType::D),
            ("mag_g".into(), FitsType::D),
            ("mag_r".into(), FitsType::D),
            ("class".into(), FitsType::A(8)),
        ],
    )?;
    let mut rng = StdRng::seed_from_u64(11);
    for i in 0..ROWS {
        let class = match rng.gen_range(0..10) {
            0..=6 => "STAR",
            7..=8 => "GALAXY",
            _ => "QSO",
        };
        w.write_row(&Row(vec![
            Value::Int64(i as i64),
            Value::Float64(rng.gen_range(0.0..360.0)),
            Value::Float64(rng.gen_range(-90.0..90.0)),
            Value::Float64(rng.gen_range(14.0..24.0)),
            Value::Float64(rng.gen_range(13.5..23.5)),
            Value::Text(class.into()),
        ]))?;
    }
    w.finish()?;
    println!("done ({} MB)", std::fs::metadata(&path)?.len() / 1_000_000);

    // --- The old way: a procedural program per question. -----------------
    let mut proc = ProceduralFits::open(&path)?;
    let t = Instant::now();
    let pmin = proc.aggregate("mag_g", ProcAgg::Min)?;
    let pmax = proc.aggregate("mag_g", ProcAgg::Max)?;
    let pavg = proc.aggregate("mag_g", ProcAgg::Avg)?;
    println!(
        "\nprocedural (CFITSIO-style): min={pmin:.3} max={pmax:.3} avg={pavg:.3}  \
         [{:.0} ms, {:.1} MB read]",
        t.elapsed().as_secs_f64() * 1e3,
        proc.bytes_read as f64 / 1e6
    );

    // --- The NoDB way: register the FITS file, write SQL. ---------------
    let provider = FitsProvider::open(&path, None, true)?;
    let schema = provider.table().schema()?;
    // Keep a handle for observability; the engine owns the provider.
    let stats_handle = FitsProvider::open(&path, None, true)?;
    let _ = stats_handle; // (fresh handle just to show the API; not used)
    let mut db = NoDb::new(NoDbConfig::postgres_raw())?;
    db.register_provider("catalog", schema, Box::new(provider))?;

    let queries = [
        "select min(mag_g), max(mag_g), avg(mag_g) from catalog",
        "select class, count(*) as n, avg(mag_g) from catalog group by class order by n desc",
        "select count(*) from catalog where mag_g < 16 and dec > 0",
        "select avg(mag_g - mag_r) from catalog where class = 'QSO'",
    ];
    println!("\nSQL over the same file (first query builds the cache):");
    for sql in queries {
        let t = Instant::now();
        let r = db.query(sql)?;
        println!("  [{:6.0} ms] {sql}", t.elapsed().as_secs_f64() * 1e3);
        for row in r.rows.iter().take(3) {
            println!("             -> {row}");
        }
    }

    // Repeat the first query: served from the binary cache.
    let t = Instant::now();
    db.query(queries[0])?;
    println!(
        "\nrepeat of query #1: {:.1} ms (cache-resident)",
        t.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
