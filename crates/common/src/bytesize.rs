//! Human-readable byte quantities for budgets and reports.

use std::fmt;

use crate::error::{NoDbError, Result};

/// A byte count with human-friendly parsing/printing (`"64MB"`, `"1.5GB"`).
///
/// Budgets for the positional map and the cache (paper §4.2 "storage
/// threshold", §4.3 "size of the cache is a parameter") are expressed with
/// this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Kibibyte-free decimal constructors (the paper reports MB/GB).
    pub const fn kb(n: u64) -> ByteSize {
        ByteSize(n * 1_000)
    }
    /// Megabytes.
    pub const fn mb(n: u64) -> ByteSize {
        ByteSize(n * 1_000_000)
    }
    /// Gigabytes.
    pub const fn gb(n: u64) -> ByteSize {
        ByteSize(n * 1_000_000_000)
    }

    /// Raw byte count.
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// Parse strings like `"512"`, `"14.3MB"`, `"2.1 GB"`, `"64kb"`.
    pub fn parse(s: &str) -> Result<ByteSize> {
        let s = s.trim();
        let split = s
            .find(|c: char| !(c.is_ascii_digit() || c == '.'))
            .unwrap_or(s.len());
        let (num, unit) = s.split_at(split);
        let num: f64 = num
            .parse()
            .map_err(|_| NoDbError::parse(format!("bad byte size `{s}`")))?;
        let mult = match unit.trim().to_ascii_lowercase().as_str() {
            "" | "b" => 1.0,
            "kb" | "k" => 1e3,
            "mb" | "m" => 1e6,
            "gb" | "g" => 1e9,
            "tb" | "t" => 1e12,
            other => {
                return Err(NoDbError::parse(format!("unknown byte unit `{other}`")));
            }
        };
        Ok(ByteSize((num * mult) as u64))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1e9 {
            write!(f, "{:.2}GB", b / 1e9)
        } else if b >= 1e6 {
            write!(f, "{:.1}MB", b / 1e6)
        } else if b >= 1e3 {
            write!(f, "{:.1}KB", b / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_units() {
        assert_eq!(ByteSize::parse("512").unwrap(), ByteSize(512));
        assert_eq!(ByteSize::parse("14.3MB").unwrap(), ByteSize(14_300_000));
        assert_eq!(ByteSize::parse("2.1 GB").unwrap(), ByteSize(2_100_000_000));
        assert_eq!(ByteSize::parse("64kb").unwrap(), ByteSize(64_000));
    }

    #[test]
    fn rejects_bad_units() {
        assert!(ByteSize::parse("12qb").is_err());
        assert!(ByteSize::parse("abc").is_err());
    }

    #[test]
    fn displays_scaled() {
        assert_eq!(ByteSize::mb(14).to_string(), "14.0MB");
        assert_eq!(ByteSize(999).to_string(), "999B");
        assert_eq!(ByteSize::gb(2).to_string(), "2.00GB");
    }
}
