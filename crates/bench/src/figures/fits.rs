//! Figure 11 (paper §5.3): FITS binary tables — the procedural
//! CFITSIO-style baseline vs the in-situ engine.

use std::path::Path;

use nodb_common::Result;
use nodb_core::{NoDb, NoDbConfig};
use nodb_fits::procedural::ProcAgg;
use nodb_fits::{FitsProvider, ProceduralFits};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::data::fits_file;
use crate::report::{secs, Report};
use crate::{time, Scale};

/// Figure 11: a sequence of MIN/MAX/AVG aggregates over random float
/// columns. The procedural program pays a full scan every time (its cost
/// stays flat); PostgresRaw drops sharply once its cache holds the
/// touched columns, and the cumulative data-to-query time crosses over
/// after a few queries.
pub fn fig11(scale: Scale, out: &Path) -> Result<()> {
    let path = fits_file(scale.fits_rows())?;
    let n_queries = 40;
    let mut rng = StdRng::seed_from_u64(0x5ce);
    // The workload: (column, aggregate) pairs, shared by both systems.
    // An analysis session revisits a handful of columns (the paper's
    // workload runs MIN/MAX/AVG over the same float columns repeatedly).
    let workload: Vec<(usize, ProcAgg)> = (0..n_queries)
        .map(|_| {
            let col = rng.gen_range(0..4usize);
            let agg = match rng.gen_range(0..3) {
                0 => ProcAgg::Min,
                1 => ProcAgg::Max,
                _ => ProcAgg::Avg,
            };
            (col, agg)
        })
        .collect();

    let mut report = Report::new(
        "fig11",
        "FITS query sequence: procedural (CFITSIO-style) vs PostgresRaw",
        &[
            "query",
            "cfitsio_s",
            "postgresraw_s",
            "cum_cfitsio_s",
            "cum_raw_s",
        ],
        out,
    );

    // Procedural baseline.
    let mut proc = ProceduralFits::open(&path)?;
    let mut proc_times = Vec::with_capacity(n_queries);
    for (col, agg) in &workload {
        let (_, t) = time(|| {
            proc.aggregate(&format!("f{col}"), *agg).expect("agg");
        });
        proc_times.push(t);
    }

    // PostgresRaw over FITS (cache carries the adaptation; no positional
    // map is needed for fixed-width rows).
    let provider = FitsProvider::open(&path, None, true)?;
    let schema = provider.table().schema()?;
    let mut db = NoDb::new(NoDbConfig::postgres_raw())?;
    db.register_provider("sky", schema, Box::new(provider))?;
    let mut raw_times = Vec::with_capacity(n_queries);
    for (col, agg) in &workload {
        let func = match agg {
            ProcAgg::Min => "min",
            ProcAgg::Max => "max",
            ProcAgg::Avg => "avg",
        };
        let sql = format!("select {func}(f{col}) from sky");
        let (_, t) = time(|| db.query(&sql).expect("q"));
        raw_times.push(t);
    }

    let (mut cum_p, mut cum_r) = (0.0, 0.0);
    for qi in 0..n_queries {
        cum_p += proc_times[qi];
        cum_r += raw_times[qi];
        report.row(&[
            (qi + 1).to_string(),
            secs(proc_times[qi]),
            secs(raw_times[qi]),
            secs(cum_p),
            secs(cum_r),
        ]);
    }
    report.finish()?;
    Ok(())
}
