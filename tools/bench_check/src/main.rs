//! `bench_check` — the bench-baseline regression gate.
//!
//! The criterion shim appends one JSON object per measurement to the file
//! named by `NODB_BENCH_JSON` when the bench-smoke job runs (in smoke
//! mode each body runs three times; `min_ns` is the best of three). This
//! tool compares such a file against the committed `BENCH_BASELINE.json`
//! and fails (exit 1) when a **gated** benchmark — by default any whose
//! name contains `cold_scan` — regressed by more than the threshold
//! (default 25%), or disappeared from the run entirely (coverage rot).
//! The comparison uses `min_ns` (best observed run on each side): it is
//! the most noise-resistant single-machine statistic, though a baseline
//! committed from different hardware can still differ by more than the
//! threshold — prefer re-baselining from the CI artifact of a green run
//! so both sides come from the same runner class.
//!
//! ```text
//! bench_check compare    --baseline BENCH_BASELINE.json --current bench-current.json
//! bench_check rebaseline --current bench-current.json --out BENCH_BASELINE.json
//! ```
//!
//! Flags for `compare`: `--threshold 0.25` (fractional regression
//! allowed), `--gate cold_scan` (substring selecting gated benchmarks;
//! repeatable), `--min-ns 200000` (baseline entries faster than this are
//! reported but never gated — single-shot smoke timings of micro
//! benchmarks are pure noise).
//!
//! Both files hold flat JSON objects with `"name"`, `"mean_ns"`,
//! `"min_ns"` and `"iters"` keys — one per line for the shim's sink, one
//! per array element for the committed baseline; the parser only looks at
//! the keys, so either layout works. Duplicate names (e.g. a group run
//! both by a fast-fail filter pass and a full sweep) keep the entry with
//! the smallest `min_ns` — the least noisy estimate.
//!
//! To re-baseline after an intentional perf change, run the bench-smoke
//! commands locally with `NODB_BENCH_JSON` set (see `.github/workflows/
//! ci.yml`), then `bench_check rebaseline` and commit the result.

use std::collections::BTreeMap;
use std::process::ExitCode;

#[derive(Debug, Clone, Copy)]
struct Entry {
    mean_ns: u64,
    min_ns: u64,
    iters: u64,
}

/// Extract `(name -> Entry)` from any text that contains flat JSON
/// objects with `"name"` / `"mean_ns"` / `"min_ns"` / `"iters"` keys
/// (JSON-lines sink or pretty-printed baseline array alike). Duplicate
/// names keep the entry with the smallest min.
fn parse_entries(text: &str) -> BTreeMap<String, Entry> {
    let mut out: BTreeMap<String, Entry> = BTreeMap::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let Some(name) = scan_string_value(rest) else {
            continue;
        };
        // The numeric fields belong to the same object: stop at the
        // closing brace so a malformed entry cannot steal its
        // successor's numbers.
        let object = &rest[..rest.find('}').map_or(rest.len(), |p| p + 1)];
        let (Some(mean_ns), Some(min_ns)) = (
            scan_number_field(object, "\"mean_ns\""),
            scan_number_field(object, "\"min_ns\""),
        ) else {
            continue;
        };
        let entry = Entry {
            mean_ns,
            min_ns,
            iters: scan_number_field(object, "\"iters\"").unwrap_or(1),
        };
        out.entry(name)
            .and_modify(|e| {
                if entry.min_ns < e.min_ns {
                    *e = entry;
                }
            })
            .or_insert(entry);
    }
    out
}

/// After a key, skip `: "` and return the quoted value (no escapes —
/// benchmark names never contain quotes or backslashes; entries that do
/// are skipped).
fn scan_string_value(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let body = &s[open + 1..];
    let close = body.find('"')?;
    let v = &body[..close];
    if v.contains('\\') {
        return None;
    }
    Some(v.to_string())
}

fn scan_number_field(s: &str, key: &str) -> Option<u64> {
    let pos = s.find(key)?;
    let after = &s[pos + key.len()..];
    let digits: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

struct CompareArgs {
    baseline: String,
    current: String,
    threshold: f64,
    gates: Vec<String>,
    min_ns: u64,
}

fn compare(args: CompareArgs) -> Result<bool, String> {
    let baseline_text = std::fs::read_to_string(&args.baseline)
        .map_err(|e| format!("cannot read baseline {}: {e}", args.baseline))?;
    let current_text = std::fs::read_to_string(&args.current)
        .map_err(|e| format!("cannot read current {}: {e}", args.current))?;
    let baseline = parse_entries(&baseline_text);
    let current = parse_entries(&current_text);
    if baseline.is_empty() {
        return Err(format!("no benchmark entries in {}", args.baseline));
    }
    if current.is_empty() {
        return Err(format!("no benchmark entries in {}", args.current));
    }

    let mut failures = 0usize;
    let mut gated = 0usize;
    for (name, base) in &baseline {
        if !args.gates.iter().any(|g| name.contains(g)) {
            continue;
        }
        gated += 1;
        let Some(cur) = current.get(name) else {
            println!("FAIL  {name}: present in baseline but missing from this run");
            failures += 1;
            continue;
        };
        let ratio = cur.min_ns as f64 / base.min_ns.max(1) as f64;
        let verdict = if base.min_ns < args.min_ns {
            "skip (below --min-ns)"
        } else if ratio > 1.0 + args.threshold {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "{verdict:<22} {name}: baseline {} -> current {} ({:+.1}%)",
            fmt_ms(base.min_ns),
            fmt_ms(cur.min_ns),
            (ratio - 1.0) * 100.0,
        );
    }
    // The inverse coverage check: a gated benchmark present in this run
    // but absent from the baseline would otherwise never be compared,
    // so a regression in a newly added benchmark could pass forever.
    for name in current.keys() {
        if args.gates.iter().any(|g| name.contains(g)) && !baseline.contains_key(name) {
            println!(
                "FAIL  {name}: gated benchmark has no baseline entry — re-baseline to gate it"
            );
            failures += 1;
        }
    }
    if gated == 0 {
        return Err(format!(
            "no baseline entry matches the gate(s) {:?} — wrong baseline file?",
            args.gates
        ));
    }
    let ungated = current
        .keys()
        .filter(|n| !args.gates.iter().any(|g| n.contains(g)))
        .count();
    println!(
        "\n{gated} gated benchmark(s) checked at threshold {:.0}% \
         ({ungated} ungated measurement(s) recorded for reference); {failures} failure(s)",
        args.threshold * 100.0
    );
    if failures > 0 {
        println!(
            "If this regression is intentional, re-baseline: run the bench-smoke \
             commands with NODB_BENCH_JSON set, then \
             `bench_check rebaseline --current <sink> --out BENCH_BASELINE.json` \
             and commit the result."
        );
    }
    Ok(failures == 0)
}

fn rebaseline(current: &str, out: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(current)
        .map_err(|e| format!("cannot read current {current}: {e}"))?;
    let entries = parse_entries(&text);
    if entries.is_empty() {
        return Err(format!("no benchmark entries in {current}"));
    }
    let mut body = String::from("[\n");
    for (i, (name, e)) in entries.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"name\":\"{name}\",\"mean_ns\":{},\"min_ns\":{},\"iters\":{}}}{}\n",
            e.mean_ns,
            e.min_ns,
            e.iters,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    body.push_str("]\n");
    std::fs::write(out, body).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} entries to {out}", entries.len());
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_check compare --baseline FILE --current FILE \
         [--threshold 0.25] [--gate cold_scan] [--min-ns 200000]\n  \
         bench_check rebaseline --current FILE --out FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first() else {
        return usage();
    };
    let mut baseline = String::from("BENCH_BASELINE.json");
    let mut current = String::new();
    let mut out = String::from("BENCH_BASELINE.json");
    let mut threshold = 0.25f64;
    let mut gates: Vec<String> = Vec::new();
    let mut min_ns = 200_000u64;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let Some(value) = args.get(i) else {
            return usage();
        };
        match flag {
            "--baseline" => baseline = value.clone(),
            "--current" => current = value.clone(),
            "--out" => out = value.clone(),
            "--threshold" => match value.parse() {
                Ok(t) => threshold = t,
                Err(_) => return usage(),
            },
            "--gate" => gates.push(value.clone()),
            "--min-ns" => match value.parse() {
                Ok(n) => min_ns = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 1;
    }
    if current.is_empty() {
        return usage();
    }
    if gates.is_empty() {
        gates.push("cold_scan".to_string());
    }
    match mode.as_str() {
        "compare" => match compare(CompareArgs {
            baseline,
            current,
            threshold,
            gates,
            min_ns,
        }) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "rebaseline" => match rebaseline(&current, &out) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JSONL: &str = concat!(
        "{\"name\":\"g/cold_scan/a\",\"mode\":\"test\",\"mean_ns\":1000000,\"min_ns\":900000,\"iters\":1}\n",
        "{\"name\":\"g/warm_scan/a\",\"mode\":\"test\",\"mean_ns\":200000,\"min_ns\":200000,\"iters\":1}\n",
        "{\"name\":\"g/cold_scan/a\",\"mode\":\"test\",\"mean_ns\":800000,\"min_ns\":800000,\"iters\":1}\n",
    );

    #[test]
    fn parses_jsonl_and_keeps_smallest_duplicate() {
        let m = parse_entries(JSONL);
        assert_eq!(m.len(), 2);
        assert_eq!(m["g/cold_scan/a"].mean_ns, 800_000);
        assert_eq!(m["g/warm_scan/a"].mean_ns, 200_000);
    }

    #[test]
    fn parses_pretty_array_form() {
        let pretty = "[\n  {\"name\":\"x/cold_scan\",\"mean_ns\":5,\"min_ns\":4,\"iters\":2}\n]\n";
        let m = parse_entries(pretty);
        assert_eq!(m["x/cold_scan"].min_ns, 4);
        assert_eq!(m["x/cold_scan"].iters, 2);
    }

    #[test]
    fn malformed_entry_does_not_steal_successor_numbers() {
        let text = concat!(
            "{\"name\":\"broken\"}\n",
            "{\"name\":\"good\",\"mean_ns\":7,\"min_ns\":6,\"iters\":1}\n",
        );
        let m = parse_entries(text);
        assert!(!m.contains_key("broken"));
        assert_eq!(m["good"].mean_ns, 7);
    }
}
