//! Keyed-record tokenization for JSON Lines.
//!
//! A JSONL record is one line holding a JSON object. Unlike CSV, fields
//! are *keyed* rather than ordered: the tokenizer walks the object once,
//! matching top-level keys against the schema-declared attribute names,
//! and records the byte position where each declared value token starts.
//! Those positions feed the same positional map the CSV scan uses — a
//! map jump lands on the value token and [`JsonFormat::parse_at`]
//! converts it without re-walking the object.
//!
//! Semantics (shared with `nodb-common`'s coercion rules):
//!
//! * A **missing key** or a JSON **`null`** is SQL NULL.
//! * A **string** value is unescaped and then coerced by
//!   [`Value::parse_field`] exactly like a CSV field — `"42"` converts to
//!   the integer 42 for an `int` column, and `""` is NULL (matching the
//!   empty CSV field).
//! * **Numbers** and **booleans** coerce from their token text the same
//!   way.
//! * **Nested** objects/arrays are rejected for scalar columns.
//! * When a declared key appears more than once, the *first* occurrence
//!   supplies the value (so selective tokenizing may stop early without
//!   changing results).
//!
//! Tokenization is *selective* in the paper's sense: the walk stops as
//! soon as every requested attribute has been located.

use std::collections::HashMap;

use nodb_common::{
    swar, DataType, LineFormat, NoDbError, RawField, Result, Schema, Value, NO_POSITION,
};

/// JSON Lines records whose top-level keys name the attributes of a
/// declared schema.
#[derive(Debug, Clone)]
pub struct JsonFormat {
    keys: Vec<String>,
    /// key bytes → attribute ordinal (first declaration wins; schema
    /// rejects duplicates anyway).
    by_key: HashMap<Vec<u8>, usize>,
}

impl JsonFormat {
    /// A format matching the given top-level keys, in attribute order.
    pub fn new(keys: Vec<String>) -> JsonFormat {
        let by_key = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_bytes().to_vec(), i))
            .collect();
        JsonFormat { keys, by_key }
    }

    /// A format whose keys are the schema's field names — the
    /// "schema-declared fields pulled from top-level JSON keys" contract
    /// of `NoDb::register_jsonl`.
    pub fn from_schema(schema: &Schema) -> JsonFormat {
        JsonFormat::new(schema.fields().iter().map(|f| f.name.clone()).collect())
    }

    /// The declared keys, in attribute order.
    pub fn keys(&self) -> &[String] {
        &self.keys
    }

    /// Walk the object's top-level pairs, calling `visit(ordinal,
    /// value_start)` for each (ordinal is `None` for undeclared keys).
    /// A `true` from `visit` stops the walk early — the selective-
    /// tokenizing hook; the remainder of the record is then *not*
    /// validated, exactly like a CSV scan that stops at the last needed
    /// field.
    fn walk_object<F>(&self, line: &[u8], mut visit: F) -> Result<()>
    where
        F: FnMut(Option<usize>, u32) -> bool,
    {
        let mut i = skip_ws(line, 0);
        if line.get(i) != Some(&b'{') {
            return Err(NoDbError::parse(format!(
                "expected `{{` at offset {i} of a JSONL record"
            )));
        }
        i = skip_ws(line, i + 1);
        if line.get(i) == Some(&b'}') {
            return expect_end(line, i + 1);
        }
        loop {
            if line.get(i) != Some(&b'"') {
                return Err(NoDbError::parse(format!(
                    "expected a string key at offset {i}"
                )));
            }
            let (key_end, key_escaped) = scan_string(line, i)?;
            let key_bytes = &line[i + 1..key_end - 1];
            let ord = if key_escaped {
                self.by_key.get(&unescape(key_bytes)?).copied()
            } else {
                self.by_key.get(key_bytes).copied()
            };
            i = skip_ws(line, key_end);
            if line.get(i) != Some(&b':') {
                return Err(NoDbError::parse(format!(
                    "expected `:` after key at offset {i}"
                )));
            }
            i = skip_ws(line, i + 1);
            if visit(ord, i as u32) {
                return Ok(());
            }
            i = skip_value(line, i)?;
            i = skip_ws(line, i);
            match line.get(i) {
                Some(b',') => i = skip_ws(line, i + 1),
                Some(b'}') => return expect_end(line, i + 1),
                _ => {
                    return Err(NoDbError::parse(format!(
                        "expected `,` or `}}` at offset {i}"
                    )))
                }
            }
        }
    }
}

impl LineFormat for JsonFormat {
    fn positions_upto(&self, line: &[u8], upto: usize, out: &mut Vec<u32>) -> Result<usize> {
        let base = out.len();
        out.resize(base + upto + 1, NO_POSITION);
        let mut found = 0usize;
        self.walk_object(line, |ord, value_start| {
            if let Some(o) = ord {
                if o <= upto && out[base + o] == NO_POSITION {
                    out[base + o] = value_start;
                    found += 1;
                    // Selective tokenizing: stop once every requested
                    // attribute is located.
                    return found == upto + 1;
                }
            }
            false
        })?;
        Ok(upto + 1)
    }

    fn parse_at(&self, line: &[u8], start: u32, dtype: DataType) -> Result<Value> {
        if start == NO_POSITION {
            return Ok(Value::Null);
        }
        let i = start as usize;
        match line.get(i) {
            Some(b'"') => {
                let (end, escaped) = scan_string(line, i)?;
                let inner = &line[i + 1..end - 1];
                if escaped {
                    Value::parse_field(&unescape(inner)?, dtype)
                } else {
                    Value::parse_field(inner, dtype)
                }
            }
            Some(b'n') => {
                expect_literal(line, i, b"null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                expect_literal(line, i, b"true")?;
                Value::parse_field(b"true", dtype)
            }
            Some(b'f') => {
                expect_literal(line, i, b"false")?;
                Value::parse_field(b"false", dtype)
            }
            Some(b'-') | Some(b'0'..=b'9') => {
                Value::parse_field(&line[i..number_end(line, i)], dtype)
            }
            Some(b'{') | Some(b'[') => Err(NoDbError::parse(format!(
                "nested JSON value at offset {i} cannot convert to a scalar column"
            ))),
            Some(c) => Err(NoDbError::parse(format!(
                "unexpected byte `{}` at offset {i}",
                *c as char
            ))),
            None => Err(NoDbError::parse(format!(
                "value position {i} is past the end of the record"
            ))),
        }
    }

    fn advance(
        &self,
        line: &[u8],
        _from_start: u32,
        _from_idx: usize,
        to_idx: usize,
    ) -> Result<u32> {
        // Keys are unordered, so the anchor position cannot shorten the
        // walk the way delimiter counting does for CSV; the cheapest
        // correct move is a single-key scan that stops at the target's
        // first occurrence (no allocation, no bookkeeping for the other
        // attributes). A missing key reads as NULL via NO_POSITION.
        let mut pos = NO_POSITION;
        self.walk_object(line, |ord, value_start| {
            if ord == Some(to_idx) {
                pos = value_start;
                true
            } else {
                false
            }
        })?;
        Ok(pos)
    }

    fn raw_field<'a>(&self, line: &'a [u8], start: u32) -> RawField<'a> {
        if start == NO_POSITION {
            return RawField::Null;
        }
        let i = start as usize;
        match line.get(i) {
            // An unescaped string is byte-exact with its decoded text;
            // escaped strings need `unescape` (allocation) — opaque.
            Some(b'"') => match scan_string(line, i) {
                Ok((end, false)) => {
                    let inner = &line[i + 1..end - 1];
                    if inner.is_empty() {
                        // Empty string is NULL, like the empty CSV field.
                        RawField::Null
                    } else {
                        RawField::Text(inner)
                    }
                }
                _ => RawField::Opaque,
            },
            Some(b'n') if line.len() >= i + 4 && &line[i..i + 4] == b"null" => RawField::Null,
            _ => RawField::Opaque,
        }
    }
}

fn skip_ws(line: &[u8], mut i: usize) -> usize {
    while matches!(line.get(i), Some(b' ') | Some(b'\t')) {
        i += 1;
    }
    i
}

/// After the closing `}`, only whitespace may follow on the line.
fn expect_end(line: &[u8], i: usize) -> Result<()> {
    let rest = skip_ws(line, i);
    if rest != line.len() {
        return Err(NoDbError::parse(format!(
            "trailing content after the record at offset {rest}"
        )));
    }
    Ok(())
}

/// `i` points at an opening quote; returns (index just past the closing
/// quote, whether any escape was seen).
fn scan_string(line: &[u8], start: usize) -> Result<(usize, bool)> {
    debug_assert_eq!(line.get(start), Some(&b'"'));
    // SWAR jump to the next structural byte: everything between a `"` and
    // a `\` is plain string payload the scanner never has to look at.
    let mut i = start + 1;
    let mut escaped = false;
    while let Some(off) = swar::find_byte2(&line[i.min(line.len())..], b'"', b'\\') {
        let j = i + off;
        if line[j] == b'"' {
            return Ok((j + 1, escaped));
        }
        // Backslash: the escaped byte after it is skipped unexamined, so
        // an escaped quote never terminates the scan.
        escaped = true;
        i = j + 2;
    }
    Err(NoDbError::parse(format!(
        "unterminated string starting at offset {start}"
    )))
}

/// Skip one JSON value token starting at `i`; returns the index just past
/// it.
fn skip_value(line: &[u8], i: usize) -> Result<usize> {
    match line.get(i) {
        Some(b'"') => scan_string(line, i).map(|(end, _)| end),
        Some(b'{') | Some(b'[') => skip_composite(line, i),
        Some(b't') => expect_literal(line, i, b"true").map(|()| i + 4),
        Some(b'f') => expect_literal(line, i, b"false").map(|()| i + 5),
        Some(b'n') => expect_literal(line, i, b"null").map(|()| i + 4),
        Some(b'-') | Some(b'0'..=b'9') => Ok(number_end(line, i)),
        Some(c) => Err(NoDbError::parse(format!(
            "unexpected byte `{}` at offset {i}",
            *c as char
        ))),
        None => Err(NoDbError::parse(format!(
            "unexpected end of record at offset {i}"
        ))),
    }
}

/// Skip a nested object/array (values of undeclared keys); strings inside
/// are honoured so braces in text do not confuse the depth count.
fn skip_composite(line: &[u8], start: usize) -> Result<usize> {
    let mut depth = 0usize;
    let mut i = start;
    while i < line.len() {
        match line[i] {
            b'"' => {
                i = scan_string(line, i)?.0;
                continue;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    Err(NoDbError::parse(format!(
        "unterminated nested value starting at offset {start}"
    )))
}

fn expect_literal(line: &[u8], i: usize, lit: &[u8]) -> Result<()> {
    if line.len() >= i + lit.len() && &line[i..i + lit.len()] == lit {
        Ok(())
    } else {
        Err(NoDbError::parse(format!(
            "malformed literal at offset {i} (expected `{}`)",
            String::from_utf8_lossy(lit)
        )))
    }
}

/// First index past a number token (lenient: exact validation happens in
/// `Value::parse_field`).
fn number_end(line: &[u8], mut i: usize) -> usize {
    while matches!(
        line.get(i),
        Some(b'0'..=b'9') | Some(b'-') | Some(b'+') | Some(b'.') | Some(b'e') | Some(b'E')
    ) {
        i += 1;
    }
    i
}

/// Decode JSON string escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`,
/// including surrogate pairs) into raw bytes.
pub fn unescape(bytes: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b != b'\\' {
            out.push(b);
            i += 1;
            continue;
        }
        let Some(&e) = bytes.get(i + 1) else {
            return Err(NoDbError::parse("dangling escape at end of string"));
        };
        i += 2;
        match e {
            b'"' => out.push(b'"'),
            b'\\' => out.push(b'\\'),
            b'/' => out.push(b'/'),
            b'b' => out.push(0x08),
            b'f' => out.push(0x0c),
            b'n' => out.push(b'\n'),
            b'r' => out.push(b'\r'),
            b't' => out.push(b'\t'),
            b'u' => {
                let hi = hex4(bytes, i)?;
                i += 4;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if bytes.get(i) != Some(&b'\\') || bytes.get(i + 1) != Some(&b'u') {
                        return Err(NoDbError::parse("lone high surrogate in \\u escape"));
                    }
                    let lo = hex4(bytes, i + 2)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(NoDbError::parse("invalid low surrogate in \\u escape"));
                    }
                    i += 6;
                    char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                        .ok_or_else(|| NoDbError::parse("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(NoDbError::parse("lone low surrogate in \\u escape"));
                } else {
                    char::from_u32(hi).ok_or_else(|| NoDbError::parse("invalid \\u escape"))?
                };
                let mut buf = [0u8; 4];
                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
            }
            other => {
                return Err(NoDbError::parse(format!(
                    "unknown escape `\\{}`",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

fn hex4(bytes: &[u8], i: usize) -> Result<u32> {
    if bytes.len() < i + 4 {
        return Err(NoDbError::parse("truncated \\u escape"));
    }
    let mut v = 0u32;
    for &b in &bytes[i..i + 4] {
        let d = (b as char)
            .to_digit(16)
            .ok_or_else(|| NoDbError::parse("non-hex digit in \\u escape"))?;
        v = v * 16 + d;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt3() -> JsonFormat {
        JsonFormat::new(vec!["a".into(), "b".into(), "c".into()])
    }

    fn positions(f: &JsonFormat, line: &[u8], upto: usize) -> Vec<u32> {
        let mut out = Vec::new();
        assert_eq!(f.positions_upto(line, upto, &mut out).unwrap(), upto + 1);
        out
    }

    #[test]
    fn locates_declared_keys_in_any_order() {
        let f = fmt3();
        let line = br#"{"b": 2, "c": "x", "a": 10}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Int32).unwrap(),
            Value::Int32(10)
        );
        assert_eq!(
            f.parse_at(line, pos[1], DataType::Int32).unwrap(),
            Value::Int32(2)
        );
        assert_eq!(
            f.parse_at(line, pos[2], DataType::Text).unwrap(),
            Value::Text("x".into())
        );
    }

    #[test]
    fn missing_keys_and_nulls_are_sql_null() {
        let f = fmt3();
        let line = br#"{"a": null, "c": 3}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(pos[1], NO_POSITION, "missing key has no position");
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Int32).unwrap(),
            Value::Null
        );
        assert_eq!(
            f.parse_at(line, pos[1], DataType::Int32).unwrap(),
            Value::Null
        );
        assert_eq!(
            f.parse_at(line, pos[2], DataType::Int32).unwrap(),
            Value::Int32(3)
        );
        // An empty object is a row of NULLs, trailing whitespace allowed.
        let pos = positions(&f, b"{}  ", 2);
        assert_eq!(pos, vec![NO_POSITION; 3]);
    }

    #[test]
    fn undeclared_and_nested_values_are_skipped() {
        let f = fmt3();
        let line = br#"{"zz": {"a": [1, "}{"], "deep": true}, "b": 7}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(pos[0], NO_POSITION, "nested `a` must not match");
        assert_eq!(
            f.parse_at(line, pos[1], DataType::Int32).unwrap(),
            Value::Int32(7)
        );
    }

    #[test]
    fn first_occurrence_of_a_duplicate_key_wins() {
        let f = fmt3();
        let line = br#"{"a": 1, "a": 2}"#;
        let pos = positions(&f, line, 0);
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Int32).unwrap(),
            Value::Int32(1)
        );
    }

    #[test]
    fn escaped_keys_and_values_decode() {
        let f = JsonFormat::new(vec!["the key".into()]);
        // The key carries a unicode space escape and must still match
        // "the key"; the value mixes simple escapes, a BMP escape (é)
        // and a surrogate pair (😀). Double backslashes below are Rust
        // escaping — the JSON bytes hold single-backslash escapes.
        let line = "{\"the\\u0020key\": \"a\\\"b\\\\c\\nd\\u00e9\\ud83d\\ude00\"}".as_bytes();
        let pos = positions(&f, line, 0);
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Text).unwrap(),
            Value::Text("a\"b\\c\nd\u{e9}\u{1f600}".into())
        );
        // Raw UTF-8 passes through untouched.
        let raw = "{\"the key\": \"caf\u{e9} \u{1f680}\"}".as_bytes();
        let pos = positions(&f, raw, 0);
        assert_eq!(
            f.parse_at(raw, pos[0], DataType::Text).unwrap(),
            Value::Text("caf\u{e9} \u{1f680}".into())
        );
        // Broken escapes are rejected.
        for bad in [r#"{"the key": "\ud83d"}"#, r#"{"the key": "\q"}"#] {
            let pos = positions(&f, bad.as_bytes(), 0);
            assert!(f.parse_at(bad.as_bytes(), pos[0], DataType::Text).is_err());
        }
    }

    #[test]
    fn string_coercion_matches_csv_fields() {
        let f = fmt3();
        let line = br#"{"a": "42", "b": "", "c": "1996-03-13"}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Int32).unwrap(),
            Value::Int32(42)
        );
        // Empty string == empty CSV field == NULL.
        assert_eq!(
            f.parse_at(line, pos[1], DataType::Text).unwrap(),
            Value::Null
        );
        assert!(matches!(
            f.parse_at(line, pos[2], DataType::Date).unwrap(),
            Value::Date(_)
        ));
    }

    #[test]
    fn bool_and_float_tokens_coerce() {
        let f = fmt3();
        let line = br#"{"a": true, "b": false, "c": -2.5e1}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(
            f.parse_at(line, pos[0], DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            f.parse_at(line, pos[1], DataType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            f.parse_at(line, pos[2], DataType::Float64).unwrap(),
            Value::Float64(-25.0)
        );
    }

    #[test]
    fn selective_tokenizing_stops_after_requested_attrs() {
        // Malformed *after* `a`: requesting only `a` (attr 0, which
        // appears first) must succeed; requesting more must fail.
        let f = fmt3();
        let line = br#"{"a": 1, "b": }"#;
        let mut out = Vec::new();
        assert!(f.positions_upto(line, 0, &mut out).is_ok());
        let mut out = Vec::new();
        assert!(f.positions_upto(line, 2, &mut out).is_err());
    }

    #[test]
    fn malformed_records_error_with_offsets() {
        let f = fmt3();
        let cases: &[&[u8]] = &[
            b"",
            b"[1, 2]",
            br#"{"a" 1}"#,
            br#"{"a": 1,}"#,
            br#"{"a": 1} x"#,
            br#"{"a": "unterminated}"#,
            br#"{"a": tru}"#,
            br#"{a: 1}"#,
            br#"{"a": 1"#,
        ];
        for c in cases {
            let mut out = Vec::new();
            let err = f.positions_upto(c, 2, &mut out).unwrap_err();
            assert!(
                err.to_string().contains("offset"),
                "error for {:?} should carry an offset: {err}",
                String::from_utf8_lossy(c)
            );
        }
    }

    #[test]
    fn nested_value_for_declared_scalar_errors() {
        let f = fmt3();
        let line = br#"{"a": [1, 2]}"#;
        let pos = positions(&f, line, 0);
        assert!(f.parse_at(line, pos[0], DataType::Int32).is_err());
    }

    #[test]
    fn raw_field_exposes_plain_strings_only() {
        let f = fmt3();
        let line = br#"{"a": "plain", "b": "es\"c", "c": null, "d": 7}"#;
        let pos = positions(&f, line, 2);
        assert_eq!(f.raw_field(line, pos[0]), RawField::Text(b"plain"));
        // Escaped strings need unescaping — opaque.
        assert_eq!(f.raw_field(line, pos[1]), RawField::Opaque);
        assert_eq!(f.raw_field(line, pos[2]), RawField::Null);
        assert_eq!(f.raw_field(line, NO_POSITION), RawField::Null);
        // Empty string is NULL, matching parse_at's coercion.
        let line = br#"{"a": ""}"#;
        let pos = positions(&f, line, 0);
        assert_eq!(f.raw_field(line, pos[0]), RawField::Null);
        // Non-string tokens stay opaque (callers parse).
        let line = br#"{"a": 42}"#;
        let pos = positions(&f, line, 0);
        assert_eq!(f.raw_field(line, pos[0]), RawField::Opaque);
    }

    #[test]
    fn advance_retokenizes_to_target() {
        let f = fmt3();
        let line = br#"{"c": 30, "a": 1}"#;
        let pos = positions(&f, line, 2);
        // From any anchor, advance lands where full tokenization does.
        assert_eq!(f.advance(line, pos[0], 0, 2).unwrap(), pos[2]);
        assert_eq!(f.advance(line, pos[2], 2, 1).unwrap(), NO_POSITION);
    }
}

/// The SWAR string scanner against a byte-at-a-time reference (the
/// pre-SWAR loop), over arbitrary string payloads: escapes (including
/// trailing lone backslashes), escaped quotes, unicode multi-byte
/// sequences, and tails straddling the 8-byte word boundary.
#[cfg(test)]
mod swar_props {
    use super::*;
    use proptest::prelude::*;

    fn ref_scan_string(line: &[u8], start: usize) -> Result<(usize, bool)> {
        let mut i = start + 1;
        let mut escaped = false;
        while i < line.len() {
            match line[i] {
                b'"' => return Ok((i + 1, escaped)),
                b'\\' => {
                    escaped = true;
                    i += 2;
                }
                _ => i += 1,
            }
        }
        Err(NoDbError::parse(format!(
            "unterminated string starting at offset {start}"
        )))
    }

    /// String payloads heavy in structural bytes, plus arbitrary bytes
    /// (so unicode continuation bytes and every lane value appear).
    fn payload() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(
            prop_oneof![Just(b'"'), Just(b'\\'), Just(0xe2u8), any::<u8>()],
            0..64,
        )
    }

    proptest! {
        #[test]
        fn scan_string_matches_reference(tail in payload(), close in any::<bool>()) {
            let mut line = vec![b'"'];
            line.extend_from_slice(&tail);
            if close {
                line.push(b'"');
            }
            let got = scan_string(&line, 0);
            let want = ref_scan_string(&line, 0);
            match (got, want) {
                (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                (Err(_), Err(_)) => {}
                (g, w) => prop_assert!(false, "diverged: {:?} vs {:?}", g, w),
            }
        }

        /// End-to-end: positions_upto + parse_at over escaped/unicode
        /// strings keep behaving like the schema walk they replace.
        #[test]
        fn parse_round_trips_escaped_strings(s in "[a-z\"\\\\\u{e9}\u{4e16} ]{0,24}") {
            let encoded = {
                let mut e = String::from("{\"k\":\"");
                for c in s.chars() {
                    match c {
                        '"' => e.push_str("\\\""),
                        '\\' => e.push_str("\\\\"),
                        c => e.push(c),
                    }
                }
                e.push_str("\"}");
                e
            };
            let f = JsonFormat::new(vec!["k".to_string()]);
            let mut out = Vec::new();
            let n = f.positions_upto(encoded.as_bytes(), 0, &mut out).unwrap();
            prop_assert_eq!(n, 1);
            let v = f
                .parse_at(encoded.as_bytes(), out[0], DataType::Text)
                .unwrap();
            // The empty string is NULL, matching the empty CSV field.
            let want = if s.is_empty() { Value::Null } else { Value::Text(s) };
            prop_assert_eq!(v, want);
        }
    }
}
