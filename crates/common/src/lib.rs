//! Shared kernel for the NoDB / PostgresRaw reproduction.
//!
//! This crate holds the vocabulary types every other crate speaks:
//! [`DataType`], [`Value`], [`Schema`], [`Date`], [`Row`], and the common
//! [`NoDbError`] / [`Result`] pair. It also provides small utilities that
//! would otherwise pull in external dependencies: a self-cleaning temporary
//! directory ([`TempDir`]) and human-readable byte sizes ([`ByteSize`]).
//!
//! Nothing here is specific to in-situ processing; it is the substrate the
//! paper assumes from its host DBMS (PostgreSQL's type system and tuple
//! vocabulary).
//!
//! `unsafe` is denied crate-wide with one audited exception: the raw
//! `mmap`/`munmap`/`madvise` bindings inside [`io`] (the build
//! environment has no crates.io access, so `libc`/`memmap2` cannot be
//! used).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bytesize;
pub mod date;
pub mod error;
pub mod format;
pub mod io;
pub mod knob;
pub mod like;
pub mod row;
pub mod schema;
pub mod swar;
pub mod tempdir;
pub mod types;
pub mod value;
pub mod workload;

pub use bytesize::ByteSize;
pub use date::Date;
pub use error::{NoDbError, Result};
pub use format::{LineFormat, RawField, NO_POSITION};
pub use io::{ByteSource, IoBackend};
pub use row::Row;
pub use schema::{Field, Schema};
pub use tempdir::TempDir;
pub use types::DataType;
pub use value::Value;
pub use workload::WorkloadLog;
