//! A concurrent query server for NoDB.
//!
//! The NoDB model (PostgresRaw, SIGMOD 2012) earns its keep when the
//! adaptive auxiliary structures — positional maps, parsed-value
//! caches, statistics — built by one query are reused by the next.
//! A long-lived server multiplies that effect across *clients*: every
//! connection shares one [`NoDb`](nodb_core::NoDb) instance, so the
//! first client's cold scan warms the aux structures for everyone.
//!
//! Three pieces:
//!
//! - [`protocol`] — the length-prefixed wire format (SQL + params in,
//!   typed rows out), bounds-checked and panic-free on garbage input.
//! - [`server`] — a thread-per-connection blocking server over TCP or
//!   unix sockets with per-connection prepared-statement caches, an
//!   admission-control semaphore that answers `Busy` instead of
//!   queueing unboundedly, and graceful shutdown that drains in-flight
//!   cursors.
//! - [`client`] — a small blocking client ([`NodbClient`]) used by the
//!   CLI's `\connect` mode and by the soak tests.
//!
//! Rows are streamed frame-by-frame from the engine's lazy
//! `QueryCursor`, so a client applying `LIMIT` — or simply hanging up —
//! stops the raw-file scan at block granularity instead of paying for
//! the whole file.

pub mod client;
mod conn;
pub mod protocol;
pub mod server;

pub use client::{NodbClient, RowStream};
pub use protocol::{ErrorKind, Frame, StatsPayload, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{collect_stats, NodbServer, ServerConfig, ServerHandle, ServerStats};
