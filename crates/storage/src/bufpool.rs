//! LRU buffer pool over heap-file pages.

use std::collections::HashMap;
use std::sync::Arc;

use nodb_common::Result;

/// Counters for experiments/tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
}

/// `(table id, page number)`.
type FrameKey = (u32, u32);
/// A cached page plus the touch-clock tick of its last access.
type Frame = (Arc<Vec<u8>>, u64);

/// An LRU page cache shared by all loaded tables of an engine.
///
/// Keys are `(table id, page number)`. Capacity is in pages; the paper's
/// loaded baselines run "cold" (caches dropped) or "warm" depending on
/// the experiment, which callers control with [`BufferPool::clear`].
///
/// Recency is tracked in an ordered side index so that both hits and
/// evictions are `O(log n)` — a linear victim scan would dominate scans
/// of tables larger than the pool.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<FrameKey, Frame>,
    /// touch-clock → key, ordered; the first entry is the LRU victim.
    by_touch: std::collections::BTreeMap<u64, FrameKey>,
    clock: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Pool holding up to `capacity` pages.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            frames: HashMap::new(),
            by_touch: std::collections::BTreeMap::new(),
            clock: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetch a page, reading through `load` on a miss.
    pub fn get(
        &mut self,
        key: (u32, u32),
        load: impl FnOnce() -> Result<Vec<u8>>,
    ) -> Result<Arc<Vec<u8>>> {
        self.clock += 1;
        if let Some((page, touch)) = self.frames.get_mut(&key) {
            self.by_touch.remove(touch);
            *touch = self.clock;
            self.by_touch.insert(self.clock, key);
            self.stats.hits += 1;
            return Ok(Arc::clone(page));
        }
        self.stats.misses += 1;
        let page = Arc::new(load()?);
        if self.frames.len() >= self.capacity {
            if let Some((_, victim)) = self.by_touch.pop_first() {
                self.frames.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.frames.insert(key, (Arc::clone(&page), self.clock));
        self.by_touch.insert(self.clock, key);
        Ok(page)
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drop all cached pages ("cold buffers" experiment setting).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.by_touch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(v: u8) -> Vec<u8> {
        vec![v; 16]
    }

    #[test]
    fn read_through_and_hit() {
        let mut p = BufferPool::new(4);
        let a = p.get((0, 0), || Ok(page(1))).unwrap();
        assert_eq!(a[0], 1);
        // Second access must not call the loader.
        let b = p
            .get((0, 0), || panic!("loader must not run on hit"))
            .unwrap();
        assert_eq!(b[0], 1);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut p = BufferPool::new(2);
        p.get((0, 0), || Ok(page(0))).unwrap();
        p.get((0, 1), || Ok(page(1))).unwrap();
        p.get((0, 0), || Ok(page(0))).unwrap(); // touch 0
        p.get((0, 2), || Ok(page(2))).unwrap(); // evicts 1
        assert_eq!(p.len(), 2);
        assert_eq!(p.stats().evictions, 1);
        // Page 1 is gone: loader runs again.
        let mut reloaded = false;
        p.get((0, 1), || {
            reloaded = true;
            Ok(page(1))
        })
        .unwrap();
        assert!(reloaded);
    }

    #[test]
    fn clear_empties() {
        let mut p = BufferPool::new(2);
        p.get((0, 0), || Ok(page(0))).unwrap();
        p.clear();
        assert!(p.is_empty());
    }
}
