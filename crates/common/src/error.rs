//! The error type shared by every NoDB crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, NoDbError>;

/// Unified error type for the NoDB engine and its substrates.
///
/// Variants are coarse on purpose: callers mostly need to distinguish user
/// errors (SQL/schema/parse) from environmental ones (I/O), and tests match
/// on the variant plus message fragments.
#[derive(Debug)]
pub enum NoDbError {
    /// Underlying file or device failure.
    Io(std::io::Error),
    /// Malformed raw data encountered while tokenizing/parsing a file
    /// (bad field count, unconvertible value, truncated record...).
    Parse(String),
    /// SQL text could not be lexed or parsed.
    Sql(String),
    /// The query is well-formed but refers to unknown tables/columns or
    /// mixes types illegally.
    Plan(String),
    /// Runtime execution failure (overflow, bad cast, ...).
    Execution(String),
    /// Schema registration or catalog misuse.
    Catalog(String),
    /// Invalid engine configuration (bad knob value, unusable backend
    /// selection, malformed `NODB_*` environment override).
    Config(String),
    /// Admission control rejected the request: the serving layer is at
    /// its configured in-flight capacity (or connection limit) and the
    /// caller should back off and retry. Deliberately a typed variant —
    /// clients of `nodb-server` distinguish "busy, retry" from real
    /// failures without string matching.
    Busy(String),
    /// An internal invariant was violated; indicates a bug in this library.
    Internal(String),
}

impl NoDbError {
    /// Shorthand constructor for [`NoDbError::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        NoDbError::Parse(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Sql`].
    pub fn sql(msg: impl Into<String>) -> Self {
        NoDbError::Sql(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        NoDbError::Plan(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Execution`].
    pub fn execution(msg: impl Into<String>) -> Self {
        NoDbError::Execution(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Catalog`].
    pub fn catalog(msg: impl Into<String>) -> Self {
        NoDbError::Catalog(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        NoDbError::Config(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Busy`].
    pub fn busy(msg: impl Into<String>) -> Self {
        NoDbError::Busy(msg.into())
    }

    /// Shorthand constructor for [`NoDbError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        NoDbError::Internal(msg.into())
    }

    /// Prefix a [`NoDbError::Parse`] with raw-file location context —
    /// the file, the (0-based) row when known, and the absolute byte
    /// offset of the record — so every malformed-data diagnostic names
    /// where in which file it happened, regardless of format or scan
    /// path. Other variants pass through unchanged.
    pub fn at_raw_location(
        self,
        path: &std::path::Path,
        row: Option<u64>,
        byte: Option<u64>,
    ) -> NoDbError {
        let NoDbError::Parse(m) = self else {
            return self;
        };
        let mut loc = path.display().to_string();
        if let Some(r) = row {
            loc.push_str(&format!(", row {r}"));
        }
        if let Some(b) = byte {
            loc.push_str(&format!(", byte {b}"));
        }
        NoDbError::Parse(format!("{loc}: {m}"))
    }
}

impl fmt::Display for NoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoDbError::Io(e) => write!(f, "io error: {e}"),
            NoDbError::Parse(m) => write!(f, "parse error: {m}"),
            NoDbError::Sql(m) => write!(f, "sql error: {m}"),
            NoDbError::Plan(m) => write!(f, "plan error: {m}"),
            NoDbError::Execution(m) => write!(f, "execution error: {m}"),
            NoDbError::Catalog(m) => write!(f, "catalog error: {m}"),
            NoDbError::Config(m) => write!(f, "config error: {m}"),
            NoDbError::Busy(m) => write!(f, "busy: {m}"),
            NoDbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for NoDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NoDbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NoDbError {
    fn from(e: std::io::Error) -> Self {
        NoDbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = NoDbError::sql("unexpected token");
        assert_eq!(e.to_string(), "sql error: unexpected token");
        let e = NoDbError::parse("bad int");
        assert!(e.to_string().starts_with("parse error"));
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: NoDbError = io.into();
        assert!(matches!(e, NoDbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn at_raw_location_decorates_parse_errors_only() {
        let p = std::path::Path::new("data/t.jsonl");
        let e = NoDbError::parse("bad int `x`").at_raw_location(p, Some(3), Some(128));
        assert_eq!(
            e.to_string(),
            "parse error: data/t.jsonl, row 3, byte 128: bad int `x`"
        );
        // Byte-only (chunk workers don't know global row ids).
        let e = NoDbError::parse("oops").at_raw_location(p, None, Some(9));
        assert_eq!(e.to_string(), "parse error: data/t.jsonl, byte 9: oops");
        // Non-parse variants pass through untouched.
        let e = NoDbError::internal("bug").at_raw_location(p, Some(1), Some(2));
        assert_eq!(e.to_string(), "internal error: bug");
    }

    #[test]
    fn constructors_map_to_variants() {
        assert!(matches!(NoDbError::plan("x"), NoDbError::Plan(_)));
        assert!(matches!(NoDbError::execution("x"), NoDbError::Execution(_)));
        assert!(matches!(NoDbError::catalog("x"), NoDbError::Catalog(_)));
        assert!(matches!(NoDbError::config("x"), NoDbError::Config(_)));
        assert!(matches!(NoDbError::busy("x"), NoDbError::Busy(_)));
        assert!(matches!(NoDbError::internal("x"), NoDbError::Internal(_)));
    }
}
